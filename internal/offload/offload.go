// Package offload is the auto-offload dispatch runtime: a drop-in,
// context-aware Gemm/Gemv façade that decides, per BLAS invocation,
// whether the call should run on the CPU or be offloaded to the GPU.
//
// It is the consumer of this paper's offload thresholds that the two
// automatic-offloading papers in PAPERS.md describe ("Performant
// Automatic BLAS Offloading on Unified Memory Architecture with OpenMP
// First-Touch Style Data Movement" and the Grace-Hopper study): an
// intercepting runtime sits under the application's BLAS calls and
// routes each one to the faster device, consulting the calibrated
// timing models the advisor exposes. Three mechanisms keep that
// per-call consultation cheap and stable:
//
//   - Memoization. Applications replay the same handful of call shapes
//     millions of times, so verdicts are memoized in a compact
//     seen-shape structure: a Bloom filter answers "never seen" without
//     touching shared state (the way Stream-K++ uses Bloom filters to
//     skip already-covered work, PAPERS.md), and a small sharded, set-associative
//     exact cache serves repeat shapes lock-light and allocation-free.
//
//   - Hysteresis. Near the offload threshold the two modeled times are
//     within noise of each other, and a raw per-call argmin would flap
//     between devices — costly when each flip moves a working set. A
//     verdict only switches device when the challenger wins by a
//     configurable margin, so a ramp of shapes crossing the threshold
//     switches at most once in each direction.
//
//   - First-touch/USM placement awareness. Under unified memory the
//     first kernel after placement pays page-fault migration for the
//     whole working set, but operands the runtime already placed on the
//     device (Call.Resident) pay only the residual re-fault fraction;
//     the dispatcher prices both cases with the usm model, which is
//     exactly the first-touch-style data-movement argument of the
//     OpenMP first-touch paper.
//
// blob-served exposes the dispatcher as the batched POST /v1/dispatch
// endpoint, so remote BLAS interception layers can stream thousands of
// call shapes and get routing verdicts back in one round trip.
package offload

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/advisor"
	"repro/internal/core"
	"repro/internal/sim/systems"
	"repro/internal/sim/xfer"
)

// Device is the routing verdict for one call.
type Device uint8

// The two targets a call can be routed to. The zero value is reserved
// so the hysteresis state can distinguish "no verdict yet".
const (
	CPU Device = iota + 1
	GPU
)

// String names the device for wire formats and logs.
func (d Device) String() string {
	switch d {
	case CPU:
		return "cpu"
	case GPU:
		return "gpu"
	}
	return "unknown"
}

// Call is one BLAS invocation presented to the dispatcher: the advisor's
// call-group model plus the data-placement hint an intercepting runtime
// has that a cold advisor does not.
type Call struct {
	advisor.Call
	// Resident marks operands whose device placement has already been
	// paid: under the Unified strategy the first-touch page migration is
	// history and only the residual re-fault fraction moves per
	// iteration. Ignored for the explicit-copy strategies, whose
	// transfers are part of every invocation by definition.
	Resident bool
}

// Decision is the dispatcher's verdict for one call.
type Decision struct {
	// Device is where the call should run.
	Device Device
	// CPUSeconds and GPUSeconds are the modeled times for the whole call
	// group (data movement included; residency-adjusted when it applies).
	CPUSeconds float64
	GPUSeconds float64
	// Speedup is CPUSeconds/GPUSeconds: values above 1 favour the GPU.
	Speedup float64
	// Cached reports the verdict was served from the seen-shape cache
	// (or shared with a concurrent evaluation of the same shape) rather
	// than evaluated against the timing models.
	Cached bool
	// Held reports that hysteresis kept the previous device even though
	// the raw model comparison preferred the other one.
	Held bool
}

// EvaluateFunc prices one validated call on one system: total modeled
// CPU and GPU seconds for the call group. The default is advisor.Times;
// tests substitute counting or scripted implementations.
type EvaluateFunc func(sys systems.System, c advisor.Call) (cpuSeconds, gpuSeconds float64)

// Options configures a Dispatcher.
type Options struct {
	// System is the machine whose timing models decide placement
	// (required).
	System systems.System
	// Margin is the hysteresis band: once a device holds a shape-class
	// verdict, the other device must be better by this relative margin
	// to take it over (default 0.10, i.e. 10% faster).
	Margin float64
	// CacheEntries bounds the exact seen-shape cache (default 8192,
	// rounded up to a power of two; minimum 256).
	CacheEntries int
	// Evaluate replaces the timing-model evaluation (tests only).
	Evaluate EvaluateFunc
}

// Stats is a snapshot of the dispatcher's counters.
type Stats struct {
	// Decisions counts calls routed (errors excluded).
	Decisions uint64
	// CacheHits counts decisions served from the exact seen-shape cache.
	CacheHits uint64
	// SharedHits counts decisions that joined a concurrent evaluation of
	// the same shape instead of evaluating twice.
	SharedHits uint64
	// BloomNegatives counts decisions where the Bloom filter proved the
	// shape had never been seen, skipping the exact-cache probe.
	BloomNegatives uint64
	// Evaluations counts timing-model evaluations — at most one per
	// distinct shape while it stays cached.
	Evaluations uint64
	// Holds counts verdicts where hysteresis kept the incumbent device
	// against the raw comparison; Switches counts device changes.
	Holds    uint64
	Switches uint64
}

// classCount is the number of hysteresis shape classes:
// kernel x precision x transfer strategy.
const classCount = 2 * 2 * 3

// Dispatcher routes BLAS calls between CPU and GPU for one system.
// Construct with New; methods are safe for concurrent use.
type Dispatcher struct {
	sys      systems.System
	evaluate EvaluateFunc
	margin   float64
	cache    *shapeCache

	// last holds the hysteresis state per shape class: 0 (no verdict
	// yet) or a Device. Concurrent updates race benignly — the state is
	// a stabilizer, not an invariant — but single-threaded ramps, the
	// case hysteresis exists for, are deterministic.
	last [classCount]atomic.Uint32

	inflightMu sync.Mutex
	inflight   map[uint64]*inflightCall

	decisions, cacheHits, sharedHits, bloomNegatives atomic.Uint64
	evaluations, holds, switches                     atomic.Uint64
}

// inflightCall is one in-progress evaluation that concurrent callers of
// the same shape wait on instead of evaluating again.
type inflightCall struct {
	done chan struct{}
	dec  Decision
}

// New builds a Dispatcher for one system.
func New(opts Options) *Dispatcher {
	if opts.Evaluate == nil {
		opts.Evaluate = advisor.Times
	}
	if opts.Margin <= 0 {
		opts.Margin = 0.10
	}
	return &Dispatcher{
		sys:      opts.System,
		evaluate: opts.Evaluate,
		margin:   opts.Margin,
		cache:    newShapeCache(opts.CacheEntries),
		inflight: map[uint64]*inflightCall{},
	}
}

// Gemm routes one group of count back-to-back GEMM calls of shape
// (m, n, k) under the given transfer strategy. resident marks operands
// already placed on the device (USM first touch paid).
func (d *Dispatcher) Gemm(ctx context.Context, prec core.Precision, m, n, k, count int, s xfer.Strategy, resident bool) (Decision, error) {
	return d.Decide(ctx, Call{
		Call:     advisor.Call{Kernel: core.GEMM, M: m, N: n, K: k, Precision: prec, Count: count, Strategy: s},
		Resident: resident,
	})
}

// Gemv routes one group of count back-to-back GEMV calls of shape (m, n)
// under the given transfer strategy.
func (d *Dispatcher) Gemv(ctx context.Context, prec core.Precision, m, n, count int, s xfer.Strategy, resident bool) (Decision, error) {
	return d.Decide(ctx, Call{
		Call:     advisor.Call{Kernel: core.GEMV, M: m, N: n, Precision: prec, Count: count, Strategy: s},
		Resident: resident,
	})
}

// Decide routes one call. The hot path — a shape seen before — is two
// atomic Bloom probes and one sharded cache lookup, allocation-free; a
// cold shape evaluates the timing models once, applies the residency
// adjustment and hysteresis, and memoizes the verdict. A cancelled
// context returns its error without touching dispatcher state.
//
//blobvet:hotpath
func (d *Dispatcher) Decide(ctx context.Context, c Call) (Decision, error) {
	if err := ctx.Err(); err != nil {
		return Decision{}, err
	}
	if err := c.Validate(); err != nil {
		return Decision{}, err
	}
	key := shapeKey(c)
	if d.cache.mightContain(key) {
		if dec, ok := d.cache.get(key); ok {
			d.decisions.Add(1)
			d.cacheHits.Add(1)
			dec.Cached = true
			return dec, nil
		}
	} else {
		d.bloomNegatives.Add(1)
	}
	dec := d.computeShared(key, c)
	d.decisions.Add(1)
	return dec, nil
}

// computeShared evaluates one cold shape, deduplicating concurrent
// callers of the same key singleflight-style: the first caller becomes
// the leader and evaluates; the rest wait on its result.
func (d *Dispatcher) computeShared(key uint64, c Call) Decision {
	d.inflightMu.Lock()
	if fl, ok := d.inflight[key]; ok {
		d.inflightMu.Unlock()
		<-fl.done
		d.sharedHits.Add(1)
		dec := fl.dec
		dec.Cached = true
		return dec
	}
	fl := &inflightCall{done: make(chan struct{})}
	d.inflight[key] = fl
	d.inflightMu.Unlock()

	fl.dec = d.evaluateCall(c)
	d.cache.put(key, fl.dec)

	d.inflightMu.Lock()
	delete(d.inflight, key)
	d.inflightMu.Unlock()
	close(fl.done)
	return fl.dec
}

// evaluateCall prices the call, applies the USM residency adjustment and
// hysteresis, and shapes the Decision.
func (d *Dispatcher) evaluateCall(c Call) Decision {
	d.evaluations.Add(1)
	cpu, gpu := d.evaluate(d.sys, c.Call)
	if c.Resident && c.Strategy == xfer.Unified {
		gpu -= d.firstTouchSavings(c.Call)
		if gpu <= 0 {
			gpu = 1e-12 // placement savings can never make compute free
		}
	}
	raw := CPU
	if gpu < cpu {
		raw = GPU
	}
	dev := d.applyHysteresis(classIndex(c), raw, cpu, gpu)
	return Decision{
		Device:     dev,
		CPUSeconds: cpu,
		GPUSeconds: gpu,
		Speedup:    cpu / gpu,
		Held:       dev != raw,
	}
}

// firstTouchSavings is the modeled data-movement time a resident working
// set avoids under USM: the full first-touch migration minus the
// residual-faults-only cost of an already-placed working set.
func (d *Dispatcher) firstTouchSavings(c advisor.Call) float64 {
	es := c.Precision.ElemSize()
	var toDev, fromDev int64
	if c.Kernel == core.GEMV {
		toDev, fromDev = xfer.GemvBytes(es, c.M, c.N)
	} else {
		toDev, fromDev = xfer.GemmBytes(es, c.M, c.N, c.K)
	}
	p, link := d.sys.GPU.USM, d.sys.GPU.Link
	return p.MoveSeconds(link, toDev, fromDev, c.Count) -
		p.ResidentMoveSeconds(link, toDev, fromDev, c.Count)
}

// applyHysteresis resolves the raw model preference against the shape
// class's incumbent device: with no incumbent, or agreement, the raw
// verdict stands; otherwise the challenger must win by the margin or
// the incumbent is held.
func (d *Dispatcher) applyHysteresis(class int, raw Device, cpu, gpu float64) Device {
	for {
		prev := Device(d.last[class].Load())
		chosen := raw
		if prev != 0 && prev != raw {
			switches := false
			if raw == GPU {
				switches = gpu*(1+d.margin) < cpu
			} else {
				switches = cpu*(1+d.margin) < gpu
			}
			if !switches {
				chosen = prev
			}
		}
		if d.last[class].CompareAndSwap(uint32(prev), uint32(chosen)) {
			if chosen != raw {
				d.holds.Add(1)
			} else if prev != 0 && chosen != prev {
				d.switches.Add(1)
			}
			return chosen
		}
	}
}

// classIndex maps a call to its hysteresis shape class:
// (kernel, precision, strategy).
func classIndex(c Call) int {
	k := 0
	if c.Kernel == core.GEMV {
		k = 1
	}
	p := 0
	if c.Precision == core.F64 {
		p = 1
	}
	return (k*2+p)*3 + int(c.Strategy)
}

// Stats snapshots the dispatcher's counters.
func (d *Dispatcher) Stats() Stats {
	return Stats{
		Decisions:      d.decisions.Load(),
		CacheHits:      d.cacheHits.Load(),
		SharedHits:     d.sharedHits.Load(),
		BloomNegatives: d.bloomNegatives.Load(),
		Evaluations:    d.evaluations.Load(),
		Holds:          d.holds.Load(),
		Switches:       d.switches.Load(),
	}
}

// System returns the system this dispatcher routes for.
func (d *Dispatcher) System() systems.System { return d.sys }
