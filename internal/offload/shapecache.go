package offload

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// This file is the compact seen-shape structure behind the dispatcher's
// memoization: a Bloom filter in front of a sharded, set-associative
// exact cache.
//
// The Bloom filter is the cheap first word on whether a shape has ever
// been dispatched: two atomic loads, no locks, no false negatives. A
// negative answer lets a cold shape skip the exact-cache probe entirely
// and go straight to evaluation — the Stream-K++ trick of using a
// probabilistic seen-set to avoid touching heavier state for work that
// is provably new. A positive answer (possibly false, and possibly
// referring to an entry that has since been evicted) falls through to
// the exact cache, which is authoritative.
//
// The exact cache is a fixed array of 4-way sets, sharded 64 ways by
// key so concurrent dispatchers contend on 64 independent mutexes
// instead of one. Everything is preallocated at construction: the hot
// lookup and insert paths allocate nothing and the blob-vet hotalloc
// analyzer holds them to that.

// cacheWays is the set associativity: a shape evicts only the least
// recently used of the 3 other shapes that hash to its set.
const cacheWays = 4

// cacheShards is the lock-striping factor (must be a power of two).
const cacheShards = 64

type cacheEntry struct {
	key uint64
	dec Decision
}

type cacheShard struct {
	mu sync.Mutex
	// entries holds setsPerShard consecutive groups of cacheWays slots.
	// Within a set, slot 0 is most recently used; inserts shift the set
	// right and evict the last slot.
	entries []cacheEntry
	_       [40]byte // pad to keep neighbouring shard locks off one cache line
}

type shapeCache struct {
	shards       [cacheShards]cacheShard
	setsPerShard uint64

	bloom     []atomic.Uint64
	bloomMask uint64 // bit-index mask; len(bloom)*64 bits total
}

// newShapeCache builds a cache of about `entries` exact slots (rounded
// up to a power of two, minimum 256) with a Bloom filter sized at 16
// bits per slot — under 1% false positives even at full occupancy.
func newShapeCache(entries int) *shapeCache {
	if entries < 256 {
		entries = 8192
	}
	n := uint64(1) << bits.Len64(uint64(entries-1)) // next power of two
	sets := n / cacheWays / cacheShards
	if sets < 1 {
		sets = 1
	}
	bloomBits := n * 16
	c := &shapeCache{
		setsPerShard: sets,
		bloom:        make([]atomic.Uint64, bloomBits/64),
		bloomMask:    bloomBits - 1,
	}
	for i := range c.shards {
		c.shards[i].entries = make([]cacheEntry, sets*cacheWays)
	}
	return c
}

// remix is the splitmix64 finalizer: the second, independent Bloom probe
// is derived from the first by one more mixing round.
func remix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// mightContain reports whether the shape may have been seen before.
// False means definitely never seen; true means probe the exact cache.
//
//blobvet:hotpath
func (c *shapeCache) mightContain(key uint64) bool {
	i1 := key & c.bloomMask
	if c.bloom[i1>>6].Load()&(1<<(i1&63)) == 0 {
		return false
	}
	i2 := remix(key) & c.bloomMask
	return c.bloom[i2>>6].Load()&(1<<(i2&63)) != 0
}

// bloomAdd marks the shape as seen. Lock-free: a CAS loop ORs the bit in
// (atomic.Uint64.Or needs Go 1.23; the module floor is 1.22).
//
//blobvet:hotpath
func (c *shapeCache) bloomAdd(key uint64) {
	c.bloomSetBit(key & c.bloomMask)
	c.bloomSetBit(remix(key) & c.bloomMask)
}

//blobvet:hotpath
func (c *shapeCache) bloomSetBit(idx uint64) {
	w := &c.bloom[idx>>6]
	bit := uint64(1) << (idx & 63)
	for {
		old := w.Load()
		if old&bit != 0 || w.CompareAndSwap(old, old|bit) {
			return
		}
	}
}

// get returns the memoized decision for key. On a hit the entry is
// promoted to the front of its set.
//
//blobvet:hotpath
func (c *shapeCache) get(key uint64) (Decision, bool) {
	sh := &c.shards[key&(cacheShards-1)]
	base := ((key >> 6) % c.setsPerShard) * cacheWays
	sh.mu.Lock()
	for i := base; i < base+cacheWays; i++ {
		if sh.entries[i].key == key {
			ent := sh.entries[i]
			for j := i; j > base; j-- {
				sh.entries[j] = sh.entries[j-1]
			}
			sh.entries[base] = ent
			sh.mu.Unlock()
			return ent.dec, true
		}
	}
	sh.mu.Unlock()
	return Decision{}, false
}

// put memoizes a decision, evicting the least recently used entry of the
// shape's set when full, and marks the shape in the Bloom filter.
//
//blobvet:hotpath
func (c *shapeCache) put(key uint64, dec Decision) {
	sh := &c.shards[key&(cacheShards-1)]
	base := ((key >> 6) % c.setsPerShard) * cacheWays
	sh.mu.Lock()
	insert := base + cacheWays - 1
	for i := base; i < base+cacheWays; i++ {
		if sh.entries[i].key == key {
			insert = i
			break
		}
	}
	for j := insert; j > base; j-- {
		sh.entries[j] = sh.entries[j-1]
	}
	sh.entries[base].key = key
	sh.entries[base].dec = dec
	sh.mu.Unlock()
	c.bloomAdd(key)
}

// shapeKey fingerprints a call's full identity — kernel, precision,
// strategy, residency, shape and iteration count — as one 64-bit key.
// Keys are splitmix64-mixed so set and shard indices are uniform; 0 is
// remapped because it is the empty-slot sentinel.
//
//blobvet:hotpath
func shapeKey(c Call) uint64 {
	flags := uint64(c.Kernel)<<1 | uint64(c.Precision)<<3 | uint64(c.Strategy)<<5
	if c.Resident {
		flags |= 1
	}
	h := remix(flags + 0x9e3779b97f4a7c15)
	h = remix(h ^ uint64(c.M))
	h = remix(h ^ uint64(c.N))
	h = remix(h ^ uint64(c.K))
	h = remix(h ^ uint64(c.Count))
	if h == 0 {
		h = 1
	}
	return h
}
