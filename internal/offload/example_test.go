package offload_test

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/offload"
	"repro/internal/sim/systems"
	"repro/internal/sim/xfer"
)

// Example is the README's "Dispatch routing" snippet, compiled: build one
// long-lived dispatcher per system and route every BLAS call group
// through it. The first sighting of a shape evaluates the timing models;
// replays are answered from the shape cache, and verdicts near the
// offload threshold are held by hysteresis instead of flapping.
func Example() {
	sys, err := systems.ByName("isambard-ai")
	if err != nil {
		panic(err)
	}
	d := offload.New(offload.Options{System: sys})
	ctx := context.Background()

	small, _ := d.Gemv(ctx, core.F64, 64, 64, 1, xfer.TransferAlways, false)
	big, _ := d.Gemm(ctx, core.F32, 4096, 4096, 4096, 32, xfer.TransferOnce, false)
	again, _ := d.Gemm(ctx, core.F32, 4096, 4096, 4096, 32, xfer.TransferOnce, false)

	fmt.Printf("gemv 64:   %s\n", small.Device)
	fmt.Printf("gemm 4096: %s (%.0fx)\n", big.Device, big.Speedup)
	fmt.Printf("replay:    %s cached=%v\n", again.Device, again.Cached)
	// Output:
	// gemv 64:   cpu
	// gemm 4096: gpu (8x)
	// replay:    gpu cached=true
}
