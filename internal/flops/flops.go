// Package flops implements the exact FLOP-count model of GPU-BLOB (§III-A).
//
// For C = alpha*A*B + beta*C the naive count is:
//
//	A*B         : 2*M*N*K   (M*N*K fused multiply-adds)
//	alpha*(AB)  : M*N
//	beta*C      : M*N
//	AB + C      : M*N
//
// i.e. 2MNK + 3MN in total. The paper's Table I experiment shows modern
// libraries implement the beta == 0 shortcut (skip beta*C and AB+C) but do
// NOT shortcut alpha == 1, so GPU-BLOB counts
//
//	GEMM: 2MNK + MN + qMN
//	GEMV: 2MN  + M  + qM        with q = 0 if beta == 0, else q = 2.
//
// The 2MNK / 2MN approximations common in the literature are also provided;
// they are only accurate when K (resp. N) is large, which several of the
// paper's problem types deliberately violate.
package flops

// Beta describes only what the FLOP model needs to know about beta.
type Beta struct {
	IsZero bool
}

// BetaFrom64 captures the beta classification of a float64 coefficient.
func BetaFrom64(beta float64) Beta { return Beta{IsZero: beta == 0} }

// BetaFrom32 captures the beta classification of a float32 coefficient.
func BetaFrom32(beta float32) Beta { return Beta{IsZero: beta == 0} }

// q returns the paper's q factor: 0 when beta == 0, else 2.
func (b Beta) q() int64 {
	if b.IsZero {
		return 0
	}
	return 2
}

// Gemm returns the exact FLOP count of one GEMM call under the paper's
// model: 2MNK + MN + qMN.
func Gemm(m, n, k int, beta Beta) int64 {
	M, N, K := int64(m), int64(n), int64(k)
	return 2*M*N*K + M*N + beta.q()*M*N
}

// Gemv returns the exact FLOP count of one GEMV call: 2MN + M + qM.
func Gemv(m, n int, beta Beta) int64 {
	M, N := int64(m), int64(n)
	return 2*M*N + M + beta.q()*M
}

// GemmNaive returns the full 2MNK + 3MN count with no beta shortcut.
func GemmNaive(m, n, k int) int64 {
	M, N, K := int64(m), int64(n), int64(k)
	return 2*M*N*K + 3*M*N
}

// GemvNaive returns the full 2MN + 3M count with no beta shortcut.
func GemvNaive(m, n int) int64 {
	M, N := int64(m), int64(n)
	return 2*M*N + 3*M
}

// GemmApprox returns the common 2MNK approximation.
func GemmApprox(m, n, k int) int64 { return 2 * int64(m) * int64(n) * int64(k) }

// GemvApprox returns the common 2MN approximation.
func GemvApprox(m, n int) int64 { return 2 * int64(m) * int64(n) }

// GemmBytes returns the bytes touched by one GEMM (A, B read; C read+write
// unless beta == 0, in which case C is write-only): the denominator of the
// arithmetic-intensity calculation used in §IV-C.
func GemmBytes(m, n, k int, elemSize int, beta Beta) int64 {
	M, N, K := int64(m), int64(n), int64(k)
	es := int64(elemSize)
	bytes := (M*K + K*N) * es // A and B read once
	if beta.IsZero {
		bytes += M * N * es // C written
	} else {
		bytes += 2 * M * N * es // C read and written
	}
	return bytes
}

// GemvBytes returns the bytes touched by one GEMV (A and x read; y
// read+write unless beta == 0).
func GemvBytes(m, n int, elemSize int, beta Beta) int64 {
	M, N := int64(m), int64(n)
	es := int64(elemSize)
	bytes := (M*N + N) * es
	if beta.IsZero {
		bytes += M * es
	} else {
		bytes += 2 * M * es
	}
	return bytes
}

// GemmIntensity returns FLOPs per byte for a GEMM problem, the paper's
// Arithmetic Intensity (§IV-C).
func GemmIntensity(m, n, k int, elemSize int, beta Beta) float64 {
	return float64(Gemm(m, n, k, beta)) / float64(GemmBytes(m, n, k, elemSize, beta))
}

// GemvIntensity returns FLOPs per byte for a GEMV problem.
func GemvIntensity(m, n int, elemSize int, beta Beta) float64 {
	return float64(Gemv(m, n, beta)) / float64(GemvBytes(m, n, elemSize, beta))
}

// GFLOPS converts a FLOP count and elapsed seconds into GFLOP/s.
func GFLOPS(flopCount int64, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return float64(flopCount) / seconds / 1e9
}
