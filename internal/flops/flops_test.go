package flops

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGemmExactCounts(t *testing.T) {
	// 2MNK + MN + qMN.
	cases := []struct {
		m, n, k int
		betaZ   bool
		want    int64
	}{
		{2, 3, 4, true, 2*2*3*4 + 2*3},
		{2, 3, 4, false, 2*2*3*4 + 2*3 + 2*2*3},
		{1, 1, 1, true, 3},
		{1, 1, 1, false, 5},
		{8192, 8192, 4, true, 2*8192*8192*4 + 8192*8192}, // Table I shape
		{0, 5, 5, true, 0},
	}
	for _, c := range cases {
		got := Gemm(c.m, c.n, c.k, Beta{IsZero: c.betaZ})
		if got != c.want {
			t.Fatalf("Gemm(%d,%d,%d,z=%v) = %d, want %d", c.m, c.n, c.k, c.betaZ, got, c.want)
		}
	}
}

func TestGemvExactCounts(t *testing.T) {
	// 2MN + M + qM.
	if got := Gemv(3, 4, Beta{IsZero: true}); got != 2*3*4+3 {
		t.Fatalf("Gemv beta=0: %d", got)
	}
	if got := Gemv(3, 4, Beta{IsZero: false}); got != 2*3*4+3+2*3 {
		t.Fatalf("Gemv beta!=0: %d", got)
	}
}

func TestBetaClassification(t *testing.T) {
	if !BetaFrom64(0).IsZero || BetaFrom64(2).IsZero {
		t.Fatal("BetaFrom64")
	}
	if !BetaFrom32(0).IsZero || BetaFrom32(1).IsZero {
		t.Fatal("BetaFrom32")
	}
}

func TestNaiveVsExactRelationship(t *testing.T) {
	// Exact(beta!=0) == Naive, and Exact(beta==0) == Naive - 2MN.
	f := func(m8, n8, k8 uint8) bool {
		m, n, k := int(m8)+1, int(n8)+1, int(k8)+1
		if Gemm(m, n, k, Beta{IsZero: false}) != GemmNaive(m, n, k) {
			return false
		}
		return GemmNaive(m, n, k)-Gemm(m, n, k, Beta{IsZero: true}) == 2*int64(m)*int64(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestApproximationError(t *testing.T) {
	// The paper refuses the 2MNK approximation because small K makes it
	// wrong: at K=4 the approximation under-counts by over 3%.
	m, n, k := 8192, 8192, 4
	exact := Gemm(m, n, k, Beta{IsZero: false})
	approx := GemmApprox(m, n, k)
	relErr := float64(exact-approx) / float64(exact)
	if relErr < 0.03 {
		t.Fatalf("expected >3%% undercount at K=4, got %v", relErr)
	}
	// And with large K it becomes negligible.
	k = 8192
	exact = Gemm(m, n, k, Beta{IsZero: false})
	approx = GemmApprox(m, n, k)
	relErr = float64(exact-approx) / float64(exact)
	if relErr > 1e-3 {
		t.Fatalf("expected tiny error at K=8192, got %v", relErr)
	}
}

func TestNoOverflowAtPaperScale(t *testing.T) {
	// d=4096 sweep upper bound, and well beyond.
	got := Gemm(65536, 65536, 65536, Beta{IsZero: false})
	if got <= 0 {
		t.Fatalf("overflow: %d", got)
	}
}

func TestGemmBytes(t *testing.T) {
	// 2x3x4 f64, beta=0: A=2x4, B=4x3, C=2x3 write-only.
	want := int64(2*4+4*3+2*3) * 8
	if got := GemmBytes(2, 3, 4, 8, Beta{IsZero: true}); got != want {
		t.Fatalf("GemmBytes = %d, want %d", got, want)
	}
	// beta!=0 adds another M*N read.
	want += 2 * 3 * 8
	if got := GemmBytes(2, 3, 4, 8, Beta{IsZero: false}); got != want {
		t.Fatalf("GemmBytes beta!=0 = %d, want %d", got, want)
	}
}

func TestGemvBytes(t *testing.T) {
	want := int64(3*4+4+3) * 4 // A + x + y(write), f32
	if got := GemvBytes(3, 4, 4, Beta{IsZero: true}); got != want {
		t.Fatalf("GemvBytes = %d, want %d", got, want)
	}
}

func TestIntensityOrdering(t *testing.T) {
	// Square GEMM has far higher arithmetic intensity than GEMV of the same
	// M, and intensity grows with size — the root cause of the paper's
	// offload-threshold differences.
	b := Beta{IsZero: true}
	gemmAI := GemmIntensity(1024, 1024, 1024, 8, b)
	gemvAI := GemvIntensity(1024, 1024, 8, b)
	if gemmAI <= gemvAI {
		t.Fatalf("GEMM AI %v should exceed GEMV AI %v", gemmAI, gemvAI)
	}
	small := GemmIntensity(32, 32, 32, 8, b)
	big := GemmIntensity(2048, 2048, 2048, 8, b)
	if big <= small {
		t.Fatalf("AI should grow with square size: %v vs %v", small, big)
	}
	// GEMV intensity saturates near 1/4 flop per byte for f64.
	if ai := GemvIntensity(4096, 4096, 8, b); math.Abs(ai-0.25) > 0.01 {
		t.Fatalf("GEMV f64 AI should approach 0.25, got %v", ai)
	}
	// Thin-K GEMM (the M=N, K=32 problem type) has much lower intensity
	// than square GEMM of the same footprint.
	thin := GemmIntensity(2048, 2048, 32, 8, b)
	if thin >= big/4 {
		t.Fatalf("thin-K GEMM intensity %v should be far below square %v", thin, big)
	}
}

func TestGFLOPS(t *testing.T) {
	if got := GFLOPS(2e9, 1); got != 2 { //blobvet:allow floatcompare -- 2e9/1/1e9 divides exact powers of ten; result is exact
		t.Fatalf("GFLOPS = %v", got)
	}
	if got := GFLOPS(1e9, 0); got != 0 {
		t.Fatalf("GFLOPS with zero time = %v", got)
	}
	if got := GFLOPS(1e9, 0.5); got != 2 { //blobvet:allow floatcompare -- 1e9/0.5/1e9 is exact binary arithmetic
		t.Fatalf("GFLOPS = %v", got)
	}
}
