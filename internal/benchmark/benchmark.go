// Package benchmark measures this repository with the paper's own
// methodology and records the results as a machine-readable artifact.
//
// The paper's central methodological point (§III-C) is that CPU and GPU
// repetitions must be *interleaved*, not batched: running all repetitions
// of one configuration back to back lets clock ramps, cache warmth and
// background noise bias one side, while interleaving exposes every
// configuration to the same machine state drift. This package applies the
// same discipline to the repository itself: a Suite's cases are executed
// round-robin — repetition r of every case runs before repetition r+1 of
// any case — with warm-up repetitions discarded so only steady-state
// timings are recorded.
//
// Three groups of cases are standardized (see DefaultSuite):
//
//   - blas: the Opt* GEMM/GEMV kernels across the paper's problem shapes
//     and a size ladder, with GFLOP/s derived from the §III-A exact FLOP
//     model;
//   - sweep/advise: the modeled offload sweeps (core.RunProblem) and the
//     trace advisor (advisor.AdviseAll) — the hot paths behind
//     cmd/blob-advise and the threshold service;
//   - service: end-to-end HTTP request latency of blob-served's handlers
//     measured through net/http/httptest, reported with p50/p99.
//
// Results serialize as a schema-versioned BENCH_<tag>.json (see Artifact);
// Compare gates one artifact against another with a noise band, which is
// how scripts/verify.sh and reviewers detect performance regressions
// between PRs. cmd/blob-bench is the CLI driver.
package benchmark

import (
	"context"
	"fmt"
	"io"
	"regexp"
	"runtime"
	"sort"
	"time"
)

// Case is one benchmarked operation. Prepare allocates operands and warm
// state once (excluded from timing); the returned op closure is the unit
// of repetition.
type Case struct {
	// Name identifies the case across artifacts; Compare matches cases by
	// name, so names must be stable and self-describing, e.g.
	// "blas/gemm/f64/square/256".
	Name string
	// Group is the suite section: "blas", "sweep", "advise" or "service".
	Group string
	// FlopsPerOp is the exact §III-A FLOP count of one op, or 0 when a
	// FLOP rate is meaningless (service round-trips, advisor lookups).
	FlopsPerOp int64
	// Prepare builds the op; its context is the run's context, so a
	// cancelled run aborts expensive preparation (and ops that capture it
	// observe the same cancellation). cleanup may be nil.
	Prepare func(ctx context.Context) (op func() error, cleanup func(), err error)
}

// Options configures a suite run.
type Options struct {
	// Repetitions is the number of recorded repetitions per case
	// (default 10).
	Repetitions int
	// Warmup is the number of leading repetitions discarded per case
	// (default 2). The paper discards the first iteration of every
	// configuration for the same reason (§III-C).
	Warmup int
	// Smoke selects the tiny size ladder used by `blob-bench -smoke` and
	// the verify.sh gate: one repetition of every case at sizes chosen so
	// the whole suite finishes in seconds.
	Smoke bool
	// Filter, when non-nil, restricts the suite to matching case names.
	Filter *regexp.Regexp
}

func (o Options) withDefaults() Options {
	if o.Repetitions < 1 {
		if o.Smoke {
			o.Repetitions = 1
		} else {
			o.Repetitions = 10
		}
	}
	if o.Warmup < 0 {
		o.Warmup = 0
	} else if o.Warmup == 0 && !o.Smoke {
		o.Warmup = 2
	}
	return o
}

// rep is one recorded repetition of one case.
type rep struct {
	ns     float64
	allocs uint64
	bytes  uint64
}

// Run executes the cases with interleaved repetitions and returns one
// CaseResult per case, in case order. Progress lines go to w (nil
// discards them); ctx cancels between repetitions.
func Run(ctx context.Context, cases []Case, opt Options, w io.Writer) ([]CaseResult, error) {
	opt = opt.withDefaults()
	if w == nil {
		w = io.Discard
	}
	if opt.Filter != nil {
		var kept []Case
		for _, c := range cases {
			if opt.Filter.MatchString(c.Name) {
				kept = append(kept, c)
			}
		}
		cases = kept
	}
	if len(cases) == 0 {
		return nil, fmt.Errorf("benchmark: no cases to run")
	}

	type prepared struct {
		c       Case
		op      func() error
		cleanup func()
		reps    []rep
	}
	prep := make([]*prepared, 0, len(cases))
	cleanupAll := func() {
		for _, p := range prep {
			if p.cleanup != nil {
				p.cleanup()
			}
		}
	}
	defer cleanupAll()
	for _, c := range cases {
		op, cleanup, err := c.Prepare(ctx)
		if err != nil {
			return nil, fmt.Errorf("benchmark: preparing %s: %w", c.Name, err)
		}
		prep = append(prep, &prepared{c: c, op: op, cleanup: cleanup})
	}

	total := opt.Warmup + opt.Repetitions
	fmt.Fprintf(w, "running %d cases x %d repetitions (%d warm-up), interleaved\n",
		len(prep), total, opt.Warmup)
	var ms0, ms1 runtime.MemStats
	for r := 0; r < total; r++ {
		for _, p := range prep {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("benchmark: cancelled at repetition %d: %w", r, err)
			}
			runtime.ReadMemStats(&ms0)
			began := time.Now()
			err := p.op()
			ns := float64(time.Since(began).Nanoseconds())
			runtime.ReadMemStats(&ms1)
			if err != nil {
				return nil, fmt.Errorf("benchmark: %s repetition %d: %w", p.c.Name, r, err)
			}
			if r >= opt.Warmup {
				p.reps = append(p.reps, rep{
					ns:     ns,
					allocs: ms1.Mallocs - ms0.Mallocs,
					bytes:  ms1.TotalAlloc - ms0.TotalAlloc,
				})
			}
		}
		fmt.Fprintf(w, "  repetition %d/%d done\n", r+1, total)
	}

	out := make([]CaseResult, 0, len(prep))
	for _, p := range prep {
		out = append(out, summarize(p.c, p.reps))
	}
	return out, nil
}

// summarize folds a case's recorded repetitions into a CaseResult.
func summarize(c Case, reps []rep) CaseResult {
	ns := make([]float64, len(reps))
	var allocs, bytes float64
	for i, r := range reps {
		ns[i] = r.ns
		allocs += float64(r.allocs)
		bytes += float64(r.bytes)
	}
	sort.Float64s(ns)
	res := CaseResult{
		Name:        c.Name,
		Group:       c.Group,
		Reps:        len(reps),
		MinNs:       ns[0],
		P50Ns:       percentile(ns, 0.50),
		P99Ns:       percentile(ns, 0.99),
		MaxNs:       ns[len(ns)-1],
		AllocsPerOp: allocs / float64(len(reps)),
		BytesPerOp:  bytes / float64(len(reps)),
		FlopsPerOp:  c.FlopsPerOp,
	}
	res.NsPerOp = res.P50Ns
	if c.FlopsPerOp > 0 && res.P50Ns > 0 {
		res.GFlops = float64(c.FlopsPerOp) / res.P50Ns
	}
	return res
}

// percentile returns the nearest-rank percentile of sorted samples.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
