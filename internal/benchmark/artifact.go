package benchmark

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"
)

// SchemaVersion is the artifact format version. Compare refuses to gate
// across schema versions; bump it whenever a field changes meaning.
const SchemaVersion = 1

// Host records the environment an artifact was measured on — the fields a
// reader needs to judge whether two artifacts are comparable at all
// (GEMMbench calls this the self-describing property of a benchmark
// artifact).
type Host struct {
	OS         string `json:"os"`
	Arch       string `json:"arch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
	Hostname   string `json:"hostname,omitempty"`
}

// CurrentHost captures the running environment.
func CurrentHost() Host {
	hn, _ := os.Hostname()
	return Host{
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		Hostname:   hn,
	}
}

// CaseResult is the recorded outcome of one case: steady-state latency
// quantiles over the interleaved repetitions, allocation pressure, and —
// for kernel cases — the GFLOP/s rate under the exact §III-A FLOP model.
type CaseResult struct {
	Name  string `json:"name"`
	Group string `json:"group"`
	Reps  int    `json:"reps"`
	// NsPerOp is the headline number (the median, robust to one noisy
	// repetition); Min/P50/P99/Max give the shape of the distribution,
	// which matters for the service cases where tail latency is the
	// product.
	NsPerOp     float64 `json:"ns_per_op"`
	MinNs       float64 `json:"min_ns"`
	P50Ns       float64 `json:"p50_ns"`
	P99Ns       float64 `json:"p99_ns"`
	MaxNs       float64 `json:"max_ns"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	FlopsPerOp  int64   `json:"flops_per_op,omitempty"`
	GFlops      float64 `json:"gflops,omitempty"`
}

// Artifact is one BENCH_<tag>.json: a self-describing, schema-versioned
// record of a full suite run.
type Artifact struct {
	SchemaVersion int          `json:"schema_version"`
	Tag           string       `json:"tag"`
	CreatedUnix   int64        `json:"created_unix"`
	Host          Host         `json:"host"`
	Repetitions   int          `json:"repetitions"`
	Warmup        int          `json:"warmup"`
	Smoke         bool         `json:"smoke,omitempty"`
	Interleaved   bool         `json:"interleaved"`
	Cases         []CaseResult `json:"cases"`
}

// NewArtifact assembles an artifact around suite results.
func NewArtifact(tag string, opt Options, cases []CaseResult) *Artifact {
	opt = opt.withDefaults()
	return &Artifact{
		SchemaVersion: SchemaVersion,
		Tag:           tag,
		CreatedUnix:   time.Now().Unix(),
		Host:          CurrentHost(),
		Repetitions:   opt.Repetitions,
		Warmup:        opt.Warmup,
		Smoke:         opt.Smoke,
		Interleaved:   true,
		Cases:         cases,
	}
}

// WriteFile serializes the artifact as indented JSON.
func (a *Artifact) WriteFile(path string) error {
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return fmt.Errorf("benchmark: encoding artifact: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadArtifact loads and validates one artifact file. The schema version
// must be known; a future (or corrupted) version is an error rather than
// a silently mis-read comparison.
func ReadArtifact(path string) (*Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("benchmark: %w", err)
	}
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("benchmark: parsing %s: %w", path, err)
	}
	if a.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("benchmark: %s has schema_version %d, this binary reads %d",
			path, a.SchemaVersion, SchemaVersion)
	}
	if len(a.Cases) == 0 {
		return nil, fmt.Errorf("benchmark: %s contains no cases", path)
	}
	return &a, nil
}
