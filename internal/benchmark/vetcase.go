package benchmark

import (
	"context"
	"fmt"
	"path/filepath"
	"runtime"

	"repro/internal/analysis"
	"repro/internal/analysis/blobvet"
	"repro/internal/analysis/load"
)

// blobvetCase tracks the wall-clock of one blob-vet analysis pass: all
// nine analyzers plus directive validation over internal/flops (a small,
// stable package, so the number tracks the analyzers' own cost rather
// than the target's churn). Loading and type-checking happen once in
// Prepare — the op measures pure analysis time, which is what grows when
// an analyzer gains an accidentally quadratic walk. The suite's
// regression gate (cmd/blob-bench -against) then catches a blob-vet
// slowdown the same way it catches a kernel slowdown.
func blobvetCase() Case {
	return Case{
		Name:  "analysis/blobvet/flops",
		Group: "analysis",
		Prepare: func(context.Context) (func() error, func(), error) {
			_, thisFile, _, ok := runtime.Caller(0)
			if !ok {
				return nil, nil, fmt.Errorf("cannot locate module root")
			}
			root := filepath.Dir(filepath.Dir(filepath.Dir(thisFile)))
			pkg, err := load.Dir(filepath.Join(root, "internal", "flops"), "repro/internal/flops")
			if err != nil {
				return nil, nil, fmt.Errorf("loading internal/flops: %w", err)
			}
			op := func() error {
				blobvet.CheckDirectives(pkg.Fset, pkg.Files)
				for _, a := range analysis.All() {
					pass := blobvet.NewPass(a, pkg.Fset, pkg.Files, pkg.Types, pkg.Info)
					if err := a.Run(pass); err != nil {
						return fmt.Errorf("%s: %w", a.Name, err)
					}
					for _, d := range pass.Diagnostics() {
						if d.Severity == blobvet.SevError {
							return fmt.Errorf("%s: unexpected error finding: %s", a.Name, d.Message)
						}
					}
				}
				return nil
			}
			return op, func() {}, nil
		},
	}
}
