package benchmark

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"time"

	benchdata "repro/bench_data"
	"repro/internal/advisor"
	"repro/internal/blas"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/flops"
	"repro/internal/matrix"
	"repro/internal/offload"
	"repro/internal/overload"
	"repro/internal/service"
	"repro/internal/sim/systems"
	"repro/internal/sim/xfer"
)

// DefaultSuite builds the standardized suite: kernel cases over a size
// ladder, modeled sweep and advisor cases, and end-to-end service cases.
// The smoke ladder is small enough for a CI gate; the full ladder is what
// BENCH_baseline.json records.
func DefaultSuite(opt Options) []Case {
	gemmSizes := []int{64, 128, 256}
	gemvSizes := []int{512, 1024, 2048}
	tallM := 2048
	sweepDim := 256
	if opt.Smoke {
		gemmSizes = []int{32, 64}
		gemvSizes = []int{128}
		tallM = 256
		sweepDim = 48
	}

	var cases []Case
	for _, n := range gemmSizes {
		cases = append(cases, gemmCase(core.F32, n, n, n, "square"))
		cases = append(cases, gemmCase(core.F64, n, n, n, "square"))
	}
	// One of the paper's non-square problem types (§III-C): the tall-skinny
	// rank-32 update shape that motivates Table V.
	cases = append(cases, gemmCase(core.F32, tallM, 32, 32, "tallthin"))
	for _, n := range gemvSizes {
		cases = append(cases, gemvCase(core.F32, n))
		cases = append(cases, gemvCase(core.F64, n))
	}
	dispatchBatch := 1000
	if opt.Smoke {
		dispatchBatch = 200
	}

	cases = append(cases,
		sweepCase("dawn", core.GEMM, core.F64, sweepDim),
		sweepCase("isambard-ai", core.GEMV, core.F32, sweepDim),
		retryOverheadCase(sweepDim),
		adviseCase(),
		blackboxAdviseCase(),
		serviceAdviseCase(),
		serviceThresholdCachedCase(sweepDim),
		serviceHealthzCase(),
		overloadAcquireCase(),
		serviceThresholdShedCase(),
		offloadDecisionLatencyCase(),
		offloadDispatchBatchCase(dispatchBatch),
		clusterRouteOverheadCase(),
		clusterHedgeOverheadCase(),
		blobvetCase(),
	)
	return cases
}

// gemmCase benchmarks one Opt*gemm call on seeded operands.
func gemmCase(prec core.Precision, m, n, k int, shape string) Case {
	name := fmt.Sprintf("blas/gemm/f%d/%s/%d", 32*(1+int(prec)), shape, m)
	return Case{
		Name:       name,
		Group:      "blas",
		FlopsPerOp: flops.Gemm(m, n, k, flops.Beta{IsZero: true}),
		Prepare: func(ctx context.Context) (func() error, func(), error) {
			rng := matrix.NewRNG(matrix.DefaultSeed)
			if prec == core.F32 {
				a, b, c := matrix.NewDense32(m, k), matrix.NewDense32(k, n), matrix.NewDense32(m, n)
				a.Fill(rng)
				b.Fill(rng)
				return func() error {
					blas.OptSgemm(blas.NoTrans, blas.NoTrans, m, n, k, 1, a.Data, a.Ld, b.Data, b.Ld, 0, c.Data, c.Ld)
					return nil
				}, nil, nil
			}
			a, b, c := matrix.NewDense64(m, k), matrix.NewDense64(k, n), matrix.NewDense64(m, n)
			a.Fill(rng)
			b.Fill(rng)
			return func() error {
				blas.OptDgemm(blas.NoTrans, blas.NoTrans, m, n, k, 1, a.Data, a.Ld, b.Data, b.Ld, 0, c.Data, c.Ld)
				return nil
			}, nil, nil
		},
	}
}

// gemvCase benchmarks one square Opt*gemv call on seeded operands.
func gemvCase(prec core.Precision, n int) Case {
	name := fmt.Sprintf("blas/gemv/f%d/square/%d", 32*(1+int(prec)), n)
	return Case{
		Name:       name,
		Group:      "blas",
		FlopsPerOp: flops.Gemv(n, n, flops.Beta{IsZero: true}),
		Prepare: func(ctx context.Context) (func() error, func(), error) {
			rng := matrix.NewRNG(matrix.DefaultSeed)
			if prec == core.F32 {
				a, x, y := matrix.NewDense32(n, n), matrix.NewVector32(n), matrix.NewVector32(n)
				a.Fill(rng)
				x.Fill(rng)
				return func() error {
					blas.OptSgemv(blas.NoTrans, n, n, 1, a.Data, a.Ld, x.Data, x.Inc, 0, y.Data, y.Inc)
					return nil
				}, nil, nil
			}
			a, x, y := matrix.NewDense64(n, n), matrix.NewVector64(n), matrix.NewVector64(n)
			a.Fill(rng)
			x.Fill(rng)
			return func() error {
				blas.OptDgemv(blas.NoTrans, n, n, 1, a.Data, a.Ld, x.Data, x.Inc, 0, y.Data, y.Inc)
				return nil
			}, nil, nil
		},
	}
}

// sweepCase benchmarks one modeled offload sweep — the unit of work behind
// POST /v1/threshold and the experiments registry. Validation is off so
// the case isolates the sweep engine and timing models.
func sweepCase(system string, kernel core.KernelKind, prec core.Precision, maxDim int) Case {
	name := fmt.Sprintf("sweep/%s/%s/%s/d%d", kernelToken(kernel), precToken(prec), system, maxDim)
	return Case{
		Name:  name,
		Group: "sweep",
		Prepare: func(ctx context.Context) (func() error, func(), error) {
			sys, err := systems.ByName(system)
			if err != nil {
				return nil, nil, err
			}
			pt, err := core.FindProblem(kernel, "square")
			if err != nil {
				return nil, nil, err
			}
			cfg := core.Config{MinDim: 1, MaxDim: maxDim, Step: 1, Iterations: 8, Alpha: 1}
			return func() error {
				_, err := core.RunProblem(ctx, sys, pt, prec, cfg)
				return err
			}, nil, nil
		},
	}
}

// retryOverheadCase benchmarks the same modeled sweep as sweepCase with
// the resilience layer armed but quiet: a retry budget is configured and
// a fault injector is consulted on every backend call, but its one rule
// can never match. Comparing it against sweep/gemm/f64/dawn/d<N> bounds
// the cost of carrying the fault-injection and retry plumbing on the hot
// path — the issue's bar is under 1%.
func retryOverheadCase(maxDim int) Case {
	name := fmt.Sprintf("resilience/retry-overhead/d%d", maxDim)
	return Case{
		Name:  name,
		Group: "resilience",
		Prepare: func(ctx context.Context) (func() error, func(), error) {
			sys, err := systems.ByName("dawn")
			if err != nil {
				return nil, nil, err
			}
			pt, err := core.FindProblem(core.GEMM, "square")
			if err != nil {
				return nil, nil, err
			}
			// The rule's size window sits above the sweep, so every
			// consult is a miss: the injector runs its full matching path
			// without ever firing a fault or triggering a retry.
			plan := faultinject.Plan{Seed: 1, Rules: []faultinject.Rule{
				{Backend: faultinject.BackendGPU, MinDim: maxDim + 1, Probability: 1, Kind: faultinject.Transient},
			}}
			inj := plan.Arm()
			sys.CPU.Inject = inj
			sys.GPU.Inject = inj
			cfg := core.Config{MinDim: 1, MaxDim: maxDim, Step: 1, Iterations: 8, Alpha: 1,
				Resilience: core.Resilience{MaxAttempts: 3}}
			return func() error {
				_, err := core.RunProblem(ctx, sys, pt, core.F64, cfg)
				return err
			}, nil, nil
		},
	}
}

// adviseCase benchmarks advisor.AdviseAll over a synthetic 64-call trace on
// all three systems — cmd/blob-advise's hot path.
func adviseCase() Case {
	return Case{
		Name:  "advise/trace64/all-systems",
		Group: "advise",
		Prepare: func(ctx context.Context) (func() error, func(), error) {
			syss := systems.All()
			calls := syntheticTrace(64)
			return func() error {
				_, err := advisor.AdviseAll(syss, calls)
				return err
			}, nil, nil
		},
	}
}

// blackboxAdviseCase runs the same 64-call trace as adviseCase with the
// systems switched to the blackbox model (the embedded bench_data/
// efficiency tables). Comparing it against advise/trace64/all-systems
// bounds the cost of table interpolation — a binary search plus one
// lerp per efficiency query — over the analytic ramp it replaces.
func blackboxAdviseCase() Case {
	return Case{
		Name:  "sim/blackbox-advise/trace64",
		Group: "sim",
		Prepare: func(ctx context.Context) (func() error, func(), error) {
			set, err := benchdata.Default()
			if err != nil {
				return nil, nil, err
			}
			syss := systems.All()
			for i := range syss {
				syss[i] = syss[i].WithEffTables(set)
			}
			calls := syntheticTrace(64)
			return func() error {
				_, err := advisor.AdviseAll(syss, calls)
				return err
			}, nil, nil
		},
	}
}

// syntheticTrace builds n deterministic call groups spanning both kernels,
// both precisions and all three transfer strategies.
func syntheticTrace(n int) []advisor.Call {
	calls := make([]advisor.Call, 0, n)
	for i := 0; i < n; i++ {
		c := advisor.Call{
			Kernel:    core.GEMM,
			M:         64 + 32*(i%40),
			N:         64 + 16*(i%40),
			K:         64,
			Precision: core.F32,
			Count:     1 + i%32,
			Strategy:  xfer.Strategies[i%len(xfer.Strategies)],
		}
		if i%2 == 1 {
			c.Kernel = core.GEMV
			c.K = 0
		}
		if i%3 == 0 {
			c.Precision = core.F64
		}
		calls = append(calls, c)
	}
	return calls
}

// serviceEnv is a live in-process blob-served instance for the service
// cases: real handlers, real middleware, loopback HTTP.
type serviceEnv struct {
	svc    *service.Server
	ts     *httptest.Server
	client *http.Client
}

func newServiceEnv() *serviceEnv {
	svc := service.New(service.Options{Workers: 2, Queue: 8, CacheSize: 64})
	ts := httptest.NewServer(svc.Handler())
	return &serviceEnv{
		svc:    svc,
		ts:     ts,
		client: &http.Client{Timeout: 30 * time.Second},
	}
}

func (e *serviceEnv) close() {
	e.ts.Close()
	e.svc.Close()
}

// do issues one request and fails on any non-2xx status.
func (e *serviceEnv) do(method, path string, body []byte) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, e.ts.URL+path, rd)
	if err != nil {
		return err
	}
	resp, err := e.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return fmt.Errorf("%s %s: status %d", method, path, resp.StatusCode)
	}
	return nil
}

// serviceAdviseCase measures the end-to-end latency of POST /v1/advise for
// a two-call batch: JSON decode, validation, model evaluation, encode.
func serviceAdviseCase() Case {
	body := []byte(`{
	  "systems": ["isambard-ai", "dawn"],
	  "calls": [
	    {"kernel":"gemm","m":1024,"n":1024,"k":1024,"precision":"f32","count":8,"movement":"once"},
	    {"kernel":"gemv","m":4096,"n":4096,"precision":"f64","count":128,"movement":"always"}
	  ]
	}`)
	return Case{
		Name:  "service/advise/batch2",
		Group: "service",
		Prepare: func(ctx context.Context) (func() error, func(), error) {
			env := newServiceEnv()
			return func() error {
				return env.do(http.MethodPost, "/v1/advise", body)
			}, env.close, nil
		},
	}
}

// serviceThresholdCachedCase measures POST /v1/threshold on the cache-hit
// path: one priming request computes the sweep, then every repetition is
// served from the LRU — the steady state of a production advisor.
func serviceThresholdCachedCase(maxDim int) Case {
	body := []byte(fmt.Sprintf(`{
	  "system": "dawn", "kernel": "gemm", "problem": "square",
	  "precision": "f64", "config": {"max_dim": %d, "iterations": 8}
	}`, maxDim))
	return Case{
		Name:  fmt.Sprintf("service/threshold/cached/d%d", maxDim),
		Group: "service",
		Prepare: func(ctx context.Context) (func() error, func(), error) {
			env := newServiceEnv()
			if err := env.do(http.MethodPost, "/v1/threshold", body); err != nil {
				env.close()
				return nil, nil, fmt.Errorf("priming threshold cache: %w", err)
			}
			return func() error {
				return env.do(http.MethodPost, "/v1/threshold", body)
			}, env.close, nil
		},
	}
}

// clusterRouteOverheadCase measures the blob-gateway routing tax: one
// POST /v1/threshold through a gateway in front of a 3-replica cluster,
// with the shard already cached on its ring owner. Every repetition
// pays route-key derivation, ring lookup, breaker admission, and the
// proxy hop — the fixed overhead clustering adds to a cache hit, which
// the cluster SLO (TestGatewayRouteOverhead) bounds at p99 < 1ms.
func clusterRouteOverheadCase() Case {
	return clusterGatewayCase("cluster/route-overhead", cluster.GatewayOptions{})
}

// clusterHedgeOverheadCase is clusterRouteOverheadCase with hedging
// armed: same cached shard, same proxy hop, plus the hedge timer and
// latency-window bookkeeping on every request. Against a healthy
// cluster the timer never fires, so this case prices the *unfaulted*
// cost of arming hedges — which must stay inside the same p99 < 1ms
// routing SLO (TestGatewayHedgeOverhead asserts it; BENCH artifacts
// record it).
func clusterHedgeOverheadCase() Case {
	return clusterGatewayCase("cluster/hedge-overhead", cluster.GatewayOptions{Hedge: true})
}

func clusterGatewayCase(name string, gwOpts cluster.GatewayOptions) Case {
	body := []byte(`{
	  "system": "dawn", "kernel": "gemv", "precision": "f64",
	  "config": {"max_dim": 64, "step": 8, "iterations": 2}
	}`)
	return Case{
		Name:  name,
		Group: "service",
		Prepare: func(ctx context.Context) (op func() error, cleanup func(), err error) {
			const replicas = 3
			var (
				svcs    []*service.Server
				servers []*httptest.Server
				pools   []*cluster.Pool
			)
			cleanup = func() {
				for _, ts := range servers {
					ts.Close()
				}
				for _, p := range pools {
					p.Close()
				}
				for _, s := range svcs {
					s.Close()
				}
			}
			// Replica listeners first — their URLs seed the roster — with
			// the real handlers swapped in once pools and services exist.
			slots := make([]atomic.Value, replicas)
			members := make([]cluster.Member, replicas)
			for i := 0; i < replicas; i++ {
				slot := &slots[i]
				ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
					slot.Load().(http.Handler).ServeHTTP(w, r)
				}))
				servers = append(servers, ts)
				members[i] = cluster.Member{Name: fmt.Sprintf("rep-%d", i), URL: ts.URL}
			}
			for i := 0; i < replicas; i++ {
				pool, perr := cluster.NewPool(cluster.Options{Self: members[i].Name, Members: members})
				if perr != nil {
					cleanup()
					return nil, nil, perr
				}
				pools = append(pools, pool)
				svc := service.New(service.Options{
					Workers: 2, CacheSize: 64, PeerFill: pool.FillThreshold(),
				})
				svcs = append(svcs, svc)
				slots[i].Store(cluster.NewNode(pool, svc).Handler())
			}
			gwPool, perr := cluster.NewGatewayPool(cluster.Options{Members: members})
			if perr != nil {
				cleanup()
				return nil, nil, perr
			}
			pools = append(pools, gwPool)
			gwTS := httptest.NewServer(cluster.NewGateway(gwPool, gwOpts).Handler())
			servers = append(servers, gwTS)

			env := &serviceEnv{ts: gwTS, client: &http.Client{Timeout: 30 * time.Second}}
			// Prime the shard on its ring owner, so repetitions measure
			// routing over a cached verdict, not the sweep.
			if err := env.do(http.MethodPost, "/v1/threshold", body); err != nil {
				cleanup()
				return nil, nil, fmt.Errorf("priming cluster shard: %w", err)
			}
			return func() error {
				return env.do(http.MethodPost, "/v1/threshold", body)
			}, cleanup, nil
		},
	}
}

// serviceHealthzCase measures GET /healthz — the floor of the HTTP stack
// plus instrumentation middleware, useful to separate handler cost from
// transport cost in the other service cases.
func serviceHealthzCase() Case {
	return Case{
		Name:  "service/healthz",
		Group: "service",
		Prepare: func(ctx context.Context) (func() error, func(), error) {
			env := newServiceEnv()
			return func() error {
				return env.do(http.MethodGet, "/healthz", nil)
			}, env.close, nil
		},
	}
}

// overloadAcquireCase measures the admission controller's uncontended
// grant/release round trip — the fixed tax every admitted sweep pays on
// top of its own cost, which must stay in the nanosecond range.
func overloadAcquireCase() Case {
	return Case{
		Name:  "overload/acquire-release",
		Group: "overload",
		Prepare: func(ctx context.Context) (func() error, func(), error) {
			c := overload.New(overload.Config{MaxConcurrent: 4, TargetLatency: time.Second})
			return func() error {
				p, err := c.Acquire(ctx, overload.Ticket{Client: "bench"})
				if err != nil {
					return err
				}
				p.Release(time.Microsecond)
				return nil
			}, func() {}, nil
		},
	}
}

// serviceThresholdShedCase measures the shed fast path end to end: with
// the worker and admission queue saturated by never-finishing sweeps, a
// cold request must be refused in HTTP-round-trip time — the whole point
// of shedding early is that saying no stays cheap under overload.
func serviceThresholdShedCase() Case {
	body := []byte(`{
	  "system": "dawn", "kernel": "gemm", "problem": "square",
	  "precision": "f64", "config": {"max_dim": 77, "iterations": 8}
	}`)
	return Case{
		Name:  "service/threshold/shed",
		Group: "service",
		Prepare: func(ctx context.Context) (func() error, func(), error) {
			release := make(chan struct{})
			blocked := func(ctx context.Context, sys systems.System, pts []core.ProblemType, precs []core.Precision, cfg core.Config) ([]*core.Series, error) {
				select {
				case <-release:
				case <-ctx.Done():
				}
				return nil, ctx.Err()
			}
			svc := service.New(service.Options{Workers: 1, Queue: 1, Sweep: blocked})
			ts := httptest.NewServer(svc.Handler())
			env := &serviceEnv{svc: svc, ts: ts, client: &http.Client{Timeout: 30 * time.Second}}
			saturator := func(dim int) []byte {
				return []byte(fmt.Sprintf(`{"system":"dawn","kernel":"gemm","precision":"f64","config":{"max_dim":%d}}`, dim))
			}
			done := make(chan struct{}, 2)
			for i := 0; i < 2; i++ {
				go func(dim int) {
					_ = env.do(http.MethodPost, "/v1/threshold", saturator(dim))
					done <- struct{}{}
				}(60 + i)
			}
			// Wait until the worker slot and the admission queue are held.
			for deadline := time.Now().Add(10 * time.Second); ; {
				m := svc.Metrics()
				if m.AdmissionQueued != nil && m.AdmissionQueued() == 1 {
					break
				}
				if time.Now().After(deadline) {
					close(release)
					env.close()
					return nil, nil, fmt.Errorf("saturating the admission queue timed out")
				}
				time.Sleep(time.Millisecond)
			}
			cleanup := func() {
				close(release)
				<-done
				<-done
				env.close()
			}
			return func() error {
				resp, err := env.client.Post(ts.URL+"/v1/threshold", "application/json", bytes.NewReader(body))
				if err != nil {
					return err
				}
				defer resp.Body.Close()
				if _, err := io.Copy(io.Discard, resp.Body); err != nil {
					return err
				}
				if resp.StatusCode != http.StatusServiceUnavailable {
					return fmt.Errorf("expected a 503 shed, got %d", resp.StatusCode)
				}
				return nil
			}, cleanup, nil
		},
	}
}

// offloadDecisionLatencyCase measures offload.Dispatcher's cached
// decision path in isolation: a warmed dispatcher answering one
// already-memoized shape per op. This is the per-call routing tax an
// application pays once the shape cache is hot, and the companion of the
// internal/offload test asserting its p99 stays under 50µs.
func offloadDecisionLatencyCase() Case {
	const shapes = 256
	return Case{
		Name:  "offload/decision-latency",
		Group: "offload",
		Prepare: func(ctx context.Context) (func() error, func(), error) {
			sys, err := systems.ByName("isambard-ai")
			if err != nil {
				return nil, nil, err
			}
			d := offload.New(offload.Options{System: sys})
			calls := make([]offload.Call, shapes)
			for i := range calls {
				calls[i].Kernel = core.GEMM
				calls[i].M = 16 + 4*i
				calls[i].N, calls[i].K = 64, 64
				calls[i].Precision = core.F64
				calls[i].Count = 1
				calls[i].Strategy = xfer.TransferOnce
			}
			for _, c := range calls {
				if _, err := d.Decide(ctx, c); err != nil {
					return nil, nil, err
				}
			}
			i := 0
			return func() error {
				_, err := d.Decide(ctx, calls[i%shapes])
				i++
				return err
			}, nil, nil
		},
	}
}

// offloadDispatchBatchCase measures POST /v1/dispatch end to end for an
// n-shape batch on the warm path: one priming request evaluates every
// shape, then each repetition is pure decode + cache lookups + encode —
// the steady state of a runtime routing its call stream through the
// service.
func offloadDispatchBatchCase(n int) Case {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, `{"system":"isambard-ai","calls":[`)
	for i := 0; i < n; i++ {
		if i > 0 {
			buf.WriteByte(',')
		}
		fmt.Fprintf(&buf, `{"kernel":"gemm","m":%d,"n":64,"k":64,"precision":"f64","count":1,"movement":"once"}`, 16+4*i)
	}
	buf.WriteString(`]}`)
	body := buf.Bytes()
	return Case{
		Name:  fmt.Sprintf("offload/dispatch-batch/n%d", n),
		Group: "offload",
		Prepare: func(ctx context.Context) (func() error, func(), error) {
			env := newServiceEnv()
			if err := env.do(http.MethodPost, "/v1/dispatch", body); err != nil {
				env.close()
				return nil, nil, fmt.Errorf("priming dispatch cache: %w", err)
			}
			return func() error {
				return env.do(http.MethodPost, "/v1/dispatch", body)
			}, env.close, nil
		},
	}
}

func kernelToken(k core.KernelKind) string {
	if k == core.GEMM {
		return "gemm"
	}
	return "gemv"
}

func precToken(p core.Precision) string {
	if p == core.F32 {
		return "f32"
	}
	return "f64"
}
