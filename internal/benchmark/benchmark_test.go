package benchmark

import (
	"context"
	"errors"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// countingCase builds a trivial case whose op appends its own name to the
// shared execution log, so tests can assert the interleaving order.
func countingCase(name string, log *[]string) Case {
	return Case{
		Name:  name,
		Group: "test",
		Prepare: func(context.Context) (func() error, func(), error) {
			return func() error {
				*log = append(*log, name)
				return nil
			}, nil, nil
		},
	}
}

// TestRunInterleaves is the §III-C contract: repetition r of every case
// runs before repetition r+1 of any case, warm-up repetitions included.
func TestRunInterleaves(t *testing.T) {
	var log []string
	cases := []Case{countingCase("a", &log), countingCase("b", &log), countingCase("c", &log)}
	opt := Options{Repetitions: 2, Warmup: 1}
	results, err := Run(context.Background(), cases, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "c", "a", "b", "c", "a", "b", "c"} // 1 warm-up + 2 recorded rounds
	if strings.Join(log, " ") != strings.Join(want, " ") {
		t.Errorf("execution order %v, want round-robin %v", log, want)
	}
	for _, r := range results {
		if r.Reps != 2 {
			t.Errorf("%s recorded %d reps, want 2 (warm-up must be discarded)", r.Name, r.Reps)
		}
		if r.NsPerOp <= 0 {
			t.Errorf("%s ns_per_op = %g, want > 0", r.Name, r.NsPerOp)
		}
	}
}

// TestRunFilter restricts the suite by name and errors when nothing
// matches (an empty run must not produce an empty artifact silently).
func TestRunFilter(t *testing.T) {
	var log []string
	cases := []Case{countingCase("keep/me", &log), countingCase("drop/me", &log)}
	opt := Options{Repetitions: 1, Warmup: 0, Filter: regexp.MustCompile(`^keep/`)}
	results, err := Run(context.Background(), cases, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Name != "keep/me" {
		t.Errorf("results = %+v, want only keep/me", results)
	}

	opt.Filter = regexp.MustCompile(`matches-nothing`)
	if _, err := Run(context.Background(), cases, opt, nil); err == nil {
		t.Error("an all-filtered run must error, not return zero cases")
	}
}

// TestRunOpError: a failing repetition aborts the run with the case name
// and repetition index in the error, and still invokes every cleanup.
func TestRunOpError(t *testing.T) {
	boom := errors.New("boom")
	cleaned := 0
	var log []string
	cases := []Case{
		countingCase("healthy", &log),
		{
			Name:  "broken",
			Group: "test",
			Prepare: func(context.Context) (func() error, func(), error) {
				return func() error { return boom },
					func() { cleaned++ },
					nil
			},
		},
	}
	_, err := Run(context.Background(), cases, Options{Repetitions: 1, Warmup: 0}, nil)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if !strings.Contains(err.Error(), "broken") {
		t.Errorf("error %q does not name the failing case", err)
	}
	if cleaned != 1 {
		t.Errorf("cleanup ran %d times, want 1 even on abort", cleaned)
	}
}

// TestRunPrepareError: a failing Prepare aborts before any op runs.
func TestRunPrepareError(t *testing.T) {
	var log []string
	cases := []Case{
		{
			Name:  "unpreparable",
			Group: "test",
			Prepare: func(context.Context) (func() error, func(), error) {
				return nil, nil, errors.New("no operands")
			},
		},
		countingCase("never-runs", &log),
	}
	if _, err := Run(context.Background(), cases, Options{Repetitions: 1, Warmup: 0}, nil); err == nil {
		t.Fatal("Run accepted a case whose Prepare failed")
	}
	if len(log) != 0 {
		t.Errorf("ops ran %v despite a prepare failure", log)
	}
}

// TestRunCancel: context cancellation stops the run between repetitions.
func TestRunCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var log []string
	_, err := Run(ctx, []Case{countingCase("a", &log)}, Options{Repetitions: 1, Warmup: 0}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestArtifactRoundTrip: WriteFile then ReadArtifact preserves the suite
// results and stamps the self-describing fields.
func TestArtifactRoundTrip(t *testing.T) {
	var log []string
	opt := Options{Repetitions: 3, Warmup: 1}
	results, err := Run(context.Background(), []Case{countingCase("rt/case", &log)}, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	art := NewArtifact("unit", opt, results)
	if art.SchemaVersion != SchemaVersion || !art.Interleaved {
		t.Errorf("artifact not self-describing: %+v", art)
	}
	if art.Host.GOMAXPROCS < 1 || art.Host.GoVersion == "" {
		t.Errorf("host block incomplete: %+v", art.Host)
	}

	path := filepath.Join(t.TempDir(), "BENCH_unit.json")
	if err := art.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Tag != "unit" || back.Repetitions != 3 || back.Warmup != 1 {
		t.Errorf("round-trip lost run options: %+v", back)
	}
	if len(back.Cases) != 1 || back.Cases[0].Name != "rt/case" || back.Cases[0].Reps != 3 {
		t.Errorf("round-trip lost case results: %+v", back.Cases)
	}
}

// TestPercentileNearestRank pins the quantile convention: with ten sorted
// samples 1..10, p50 is the 5th value and p99 the 10th.
func TestPercentileNearestRank(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := percentile(sorted, 0.50); got < 4.5 || got > 5.5 {
		t.Errorf("p50 = %g, want 5", got)
	}
	if got := percentile(sorted, 0.99); got < 9.5 {
		t.Errorf("p99 = %g, want 10", got)
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("percentile of no samples = %g, want 0", got)
	}
}

// TestSmokeDefaults: smoke mode means one repetition and no warm-up
// unless overridden — that is what keeps the verify.sh gate fast.
func TestSmokeDefaults(t *testing.T) {
	o := Options{Smoke: true}.withDefaults()
	if o.Repetitions != 1 || o.Warmup != 0 {
		t.Errorf("smoke defaults = %d reps / %d warmup, want 1 / 0", o.Repetitions, o.Warmup)
	}
	f := Options{}.withDefaults()
	if f.Repetitions != 10 || f.Warmup != 2 {
		t.Errorf("full defaults = %d reps / %d warmup, want 10 / 2", f.Repetitions, f.Warmup)
	}
}

// TestDefaultSuiteSmoke: the smoke suite prepares and runs end to end —
// this is the same path scripts/verify.sh exercises via blob-bench.
func TestDefaultSuiteSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real kernels and an httptest server")
	}
	opt := Options{Smoke: true}
	cases := DefaultSuite(opt)
	if len(cases) == 0 {
		t.Fatal("smoke suite is empty")
	}
	results, err := Run(context.Background(), cases, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, r := range results {
		if seen[r.Name] {
			t.Errorf("duplicate case name %s (Compare matches by name)", r.Name)
		}
		seen[r.Name] = true
		if r.FlopsPerOp > 0 && r.GFlops <= 0 {
			t.Errorf("%s has flops but no GFLOP/s rate", r.Name)
		}
	}
	for _, group := range []string{"blas", "sweep", "advise", "service"} {
		found := false
		for _, r := range results {
			if r.Group == group {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("smoke suite has no %q cases", group)
		}
	}
}
