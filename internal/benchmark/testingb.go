package benchmark

import (
	"context"
	"io"
	"testing"

	"repro/internal/experiments"
)

// ExperimentCase wraps one experiments-registry entry as a Case, so the
// per-table/figure benchmarks in the top-level bench_test.go and the
// blob-bench suite share one definition of "regenerate this paper
// element".
func ExperimentCase(id string, opt experiments.Options) (Case, error) {
	e, err := experiments.ByID(id)
	if err != nil {
		return Case{}, err
	}
	return Case{
		Name:  "experiment/" + e.ID,
		Group: "experiment",
		Prepare: func(ctx context.Context) (func() error, func(), error) {
			return func() error { return e.Run(ctx, io.Discard, opt) }, nil, nil
		},
	}, nil
}

// RunB adapts a Case to a testing.B loop: Prepare outside the timer, the
// op inside it. GFLOP/s is reported as a custom metric when the case
// carries a FLOP count.
func RunB(b *testing.B, c Case) {
	b.Helper()
	op, cleanup, err := c.Prepare(b.Context())
	if err != nil {
		b.Fatalf("preparing %s: %v", c.Name, err)
	}
	if cleanup != nil {
		defer cleanup()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := op(); err != nil {
			b.Fatalf("%s: %v", c.Name, err)
		}
	}
	b.StopTimer()
	if c.FlopsPerOp > 0 && b.Elapsed() > 0 {
		totalFlops := float64(c.FlopsPerOp) * float64(b.N)
		b.ReportMetric(totalFlops/float64(b.Elapsed().Nanoseconds()), "GFLOP/s")
	}
}
