package benchmark

import (
	"path/filepath"
	"strings"
	"testing"
)

func readFixture(t *testing.T, name string) *Artifact {
	t.Helper()
	a, err := ReadArtifact(filepath.Join("testdata", name))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	return a
}

// TestCompareRegression is the acceptance proof for the gate: an injected
// 30% slowdown on one case (beyond the 15% noise band) must classify as a
// regression and flip Regressed(), which is exactly the condition under
// which `blob-bench -compare` exits non-zero.
func TestCompareRegression(t *testing.T) {
	rep, err := Compare(readFixture(t, "baseline.json"), readFixture(t, "regression.json"), 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Regressions) != 1 {
		t.Fatalf("regressions = %+v, want exactly the injected one", rep.Regressions)
	}
	d := rep.Regressions[0]
	if d.Name != "blas/gemm/f64/square/256" {
		t.Errorf("flagged %s, want blas/gemm/f64/square/256", d.Name)
	}
	if d.Ratio < 1.25 || d.Ratio > 1.35 {
		t.Errorf("ratio = %.3f, want ~1.30 for the injected 30%% slowdown", d.Ratio)
	}
	if !rep.Regressed() {
		t.Error("Regressed() = false; the CLI would exit 0 on a real regression")
	}
	// The 4% drift on the GEMV case must stay inside the band.
	for _, u := range rep.Unchanged {
		if u.Name == "blas/gemv/f64/square/1024" {
			return
		}
	}
	t.Error("the within-band GEMV drift was not classified as noise")
}

// TestCompareImprovement: a 40% speedup is reported as an improvement and
// does not gate.
func TestCompareImprovement(t *testing.T) {
	rep, err := Compare(readFixture(t, "baseline.json"), readFixture(t, "improvement.json"), 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Regressed() {
		t.Fatalf("improvement artifact gated: %+v", rep)
	}
	if len(rep.Improvements) != 1 || rep.Improvements[0].Name != "sweep/gemm/f64/dawn/d256" {
		t.Errorf("improvements = %+v, want exactly the sweep case", rep.Improvements)
	}
}

// TestCompareNoiseBand: drift inside ±15% on every case is all noise —
// no regressions, no improvements, exit zero.
func TestCompareNoiseBand(t *testing.T) {
	rep, err := Compare(readFixture(t, "baseline.json"), readFixture(t, "noise.json"), 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Regressed() || len(rep.Improvements) != 0 {
		t.Fatalf("noise-band artifact misclassified: %+v", rep)
	}
	if len(rep.Unchanged) != 4 {
		t.Errorf("unchanged = %d cases, want all 4", len(rep.Unchanged))
	}
}

// TestCompareSchemaMismatch: an artifact from a different schema version
// must be refused at load time, not silently mis-compared.
func TestCompareSchemaMismatch(t *testing.T) {
	_, err := ReadArtifact(filepath.Join("testdata", "schema_mismatch.json"))
	if err == nil {
		t.Fatal("ReadArtifact accepted schema_version 2")
	}
	if !strings.Contains(err.Error(), "schema_version") {
		t.Errorf("error %q does not name the schema version", err)
	}
}

// TestCompareMissingCase: a case that disappeared from the new artifact
// gates, because deleting a benchmark is the easiest way to hide a
// regression.
func TestCompareMissingCase(t *testing.T) {
	rep, err := Compare(readFixture(t, "baseline.json"), readFixture(t, "missing_case.json"), 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.OnlyOld) != 1 || rep.OnlyOld[0] != "service/advise/batch2" {
		t.Fatalf("OnlyOld = %v, want the dropped service case", rep.OnlyOld)
	}
	if !rep.Regressed() {
		t.Error("a dropped case must gate")
	}
}

// TestCompareSmokeVsFull: smoke artifacts measure different sizes, so
// comparing one against a full artifact is an error.
func TestCompareSmokeVsFull(t *testing.T) {
	full := readFixture(t, "baseline.json")
	smoke := readFixture(t, "noise.json")
	smoke.Smoke = true
	if _, err := Compare(full, smoke, 0.15); err == nil {
		t.Fatal("smoke-vs-full comparison was accepted")
	}
}

// TestCompareDefaultThreshold: threshold <= 0 falls back to the package
// default, which must itself be 15% — the documented gate width.
func TestCompareDefaultThreshold(t *testing.T) {
	rep, err := Compare(readFixture(t, "baseline.json"), readFixture(t, "regression.json"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Threshold < 0.149 || rep.Threshold > 0.151 {
		t.Errorf("default threshold = %g, want 0.15", rep.Threshold)
	}
	if len(rep.Regressions) != 1 {
		t.Errorf("default-threshold compare found %d regressions, want 1", len(rep.Regressions))
	}
}

// TestReportWriteText: the human rendering names the regression and the
// totals line; worst-first ordering is part of the contract.
func TestReportWriteText(t *testing.T) {
	rep, err := Compare(readFixture(t, "baseline.json"), readFixture(t, "regression.json"), 0.15)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	rep.WriteText(&sb)
	out := sb.String()
	if !strings.Contains(out, "REGRESSION") || !strings.Contains(out, "blas/gemm/f64/square/256") {
		t.Errorf("report text missing the regression line:\n%s", out)
	}
	if !strings.Contains(out, "1 regression(s)") {
		t.Errorf("report text missing the totals line:\n%s", out)
	}
}
