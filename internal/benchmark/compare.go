package benchmark

import (
	"fmt"
	"io"
	"sort"
)

// DefaultNoiseThreshold is the relative band inside which a timing delta
// is considered noise. 15% is deliberately wide: these are wall-clock
// medians on shared CI hardware, and the gate exists to catch real
// regressions (algorithmic slowdowns, lost parallelism, accidental
// O(n^2)), not scheduler jitter.
const DefaultNoiseThreshold = 0.15

// Delta is one matched case across two artifacts.
type Delta struct {
	Name   string  `json:"name"`
	OldNs  float64 `json:"old_ns"`
	NewNs  float64 `json:"new_ns"`
	Ratio  float64 `json:"ratio"` // NewNs / OldNs; > 1 means slower
	Change string  `json:"change"`
}

// Report is the outcome of comparing two artifacts.
type Report struct {
	Threshold    float64 `json:"threshold"`
	OldTag       string  `json:"old_tag"`
	NewTag       string  `json:"new_tag"`
	Regressions  []Delta `json:"regressions"`
	Improvements []Delta `json:"improvements"`
	Unchanged    []Delta `json:"unchanged"`
	// OnlyOld lists cases that disappeared; a removed case can hide a
	// regression, so Regressed treats a non-empty OnlyOld as a failure
	// too. OnlyNew is informational (new coverage).
	OnlyOld []string `json:"only_old,omitempty"`
	OnlyNew []string `json:"only_new,omitempty"`
}

// Regressed reports whether the comparison should gate (non-zero exit).
func (r *Report) Regressed() bool {
	return len(r.Regressions) > 0 || len(r.OnlyOld) > 0
}

// Compare matches cases by name and classifies each delta against the
// noise threshold (DefaultNoiseThreshold when threshold <= 0). Artifacts
// must carry the same schema version as this binary — ReadArtifact
// enforces that on load — and must both be non-smoke or both smoke, since
// smoke sizes measure different work.
func Compare(old, next *Artifact, threshold float64) (*Report, error) {
	if threshold <= 0 {
		threshold = DefaultNoiseThreshold
	}
	if old.SchemaVersion != next.SchemaVersion {
		return nil, fmt.Errorf("benchmark: schema mismatch: old v%d vs new v%d",
			old.SchemaVersion, next.SchemaVersion)
	}
	if old.Smoke != next.Smoke {
		return nil, fmt.Errorf("benchmark: cannot compare a smoke artifact against a full one")
	}
	rep := &Report{Threshold: threshold, OldTag: old.Tag, NewTag: next.Tag}

	oldByName := make(map[string]CaseResult, len(old.Cases))
	for _, c := range old.Cases {
		oldByName[c.Name] = c
	}
	matched := make(map[string]bool, len(old.Cases))
	for _, nc := range next.Cases {
		oc, ok := oldByName[nc.Name]
		if !ok {
			rep.OnlyNew = append(rep.OnlyNew, nc.Name)
			continue
		}
		matched[nc.Name] = true
		if oc.NsPerOp <= 0 || nc.NsPerOp <= 0 {
			return nil, fmt.Errorf("benchmark: case %s has a non-positive ns_per_op", nc.Name)
		}
		d := Delta{
			Name:  nc.Name,
			OldNs: oc.NsPerOp,
			NewNs: nc.NsPerOp,
			Ratio: nc.NsPerOp / oc.NsPerOp,
		}
		switch {
		case d.Ratio > 1+threshold:
			d.Change = "regression"
			rep.Regressions = append(rep.Regressions, d)
		case d.Ratio < 1-threshold:
			d.Change = "improvement"
			rep.Improvements = append(rep.Improvements, d)
		default:
			d.Change = "noise"
			rep.Unchanged = append(rep.Unchanged, d)
		}
	}
	for _, oc := range old.Cases {
		if !matched[oc.Name] {
			rep.OnlyOld = append(rep.OnlyOld, oc.Name)
		}
	}
	sort.Strings(rep.OnlyOld)
	sort.Strings(rep.OnlyNew)
	return rep, nil
}

// WriteText renders the report for humans, worst regression first.
func (r *Report) WriteText(w io.Writer) {
	fmt.Fprintf(w, "compare %s -> %s (noise band ±%.0f%%)\n", r.OldTag, r.NewTag, r.Threshold*100)
	byRatioDesc := func(ds []Delta) []Delta {
		out := append([]Delta(nil), ds...)
		sort.Slice(out, func(i, j int) bool { return out[i].Ratio > out[j].Ratio })
		return out
	}
	for _, d := range byRatioDesc(r.Regressions) {
		fmt.Fprintf(w, "  REGRESSION  %-40s %12.0f -> %12.0f ns/op  (%+.1f%%)\n",
			d.Name, d.OldNs, d.NewNs, (d.Ratio-1)*100)
	}
	for _, name := range r.OnlyOld {
		fmt.Fprintf(w, "  MISSING     %-40s present in old artifact only\n", name)
	}
	for _, d := range byRatioDesc(r.Improvements) {
		fmt.Fprintf(w, "  improvement %-40s %12.0f -> %12.0f ns/op  (%+.1f%%)\n",
			d.Name, d.OldNs, d.NewNs, (d.Ratio-1)*100)
	}
	fmt.Fprintf(w, "  %d regression(s), %d missing, %d improvement(s), %d within noise, %d new\n",
		len(r.Regressions), len(r.OnlyOld), len(r.Improvements), len(r.Unchanged), len(r.OnlyNew))
}
