package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/blas"
	"repro/internal/matrix"
	"repro/internal/parallel"
)

func randDense(r *rand.Rand, n int, density float64) *matrix.Dense64 {
	d := matrix.NewDense64(n, n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			if r.Float64() < density {
				d.Set(i, j, r.Float64()*2-1)
			}
		}
	}
	return d
}

func TestFromDenseToDenseRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	d := randDense(r, 37, 0.15)
	a := FromDense(d)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	back := a.ToDense()
	if diff := matrix.MaxAbsDiff64(d, back); diff != 0 {
		t.Fatalf("round trip diff %g", diff)
	}
}

func TestFromTriplets(t *testing.T) {
	ts := []Triplet{
		{1, 2, 3.0},
		{0, 0, 1.0},
		{1, 2, 4.0}, // duplicate: summed
		{2, 1, -1.0},
	}
	a, err := FromTriplets(3, 3, ts)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	d := a.ToDense()
	if d.At(1, 2) != 7 || d.At(0, 0) != 1 || d.At(2, 1) != -1 { //blobvet:allow floatcompare -- triplet values are stored verbatim; assembly moves bits, no arithmetic
		t.Fatalf("triplet assembly wrong: %+v", d.Data)
	}
	if a.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3 (duplicates merged)", a.NNZ())
	}
}

func TestFromTripletsRejectsOutOfRange(t *testing.T) {
	if _, err := FromTriplets(2, 2, []Triplet{{2, 0, 1}}); err == nil {
		t.Fatal("expected range error")
	}
	if _, err := FromTriplets(2, 2, []Triplet{{0, -1, 1}}); err == nil {
		t.Fatal("expected range error")
	}
	if _, err := FromTriplets(-1, 2, nil); err == nil {
		t.Fatal("expected shape error")
	}
}

// SpMV must agree with a dense GEMV on the expanded matrix.
func TestSpMVMatchesDenseGemv(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(60)
		d := randDense(r, n, 0.2)
		a := FromDense(d)
		x := make([]float64, n)
		y0 := make([]float64, n)
		for i := range x {
			x[i] = r.Float64()*2 - 1
			y0[i] = r.Float64()
		}
		ySp := append([]float64(nil), y0...)
		yDense := append([]float64(nil), y0...)
		a.SpMV(1.5, x, 0.5, ySp)
		blas.RefDgemv(blas.NoTrans, n, n, 1.5, d.Data, d.Ld, x, 1, 0.5, yDense, 1)
		for i := range ySp {
			if math.Abs(ySp[i]-yDense[i]) > 1e-11*float64(n+1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSpMVBetaZeroIgnoresY(t *testing.T) {
	a := RandomUniform(50, 0.1, 7)
	x := make([]float64, 50)
	y := make([]float64, 50)
	for i := range x {
		x[i] = 1
		y[i] = math.NaN()
	}
	a.SpMV(1, x, 0, y)
	for i, v := range y {
		if math.IsNaN(v) {
			t.Fatalf("beta=0 read y at %d", i)
		}
	}
}

func TestSpMVParallelMatchesSerial(t *testing.T) {
	a := RandomUniform(800, 0.05, 3)
	x := make([]float64, 800)
	for i := range x {
		x[i] = float64(i%13) - 6
	}
	ySer := make([]float64, 800)
	yPar := make([]float64, 800)
	a.SpMV(2, x, 0, ySer)
	a.SpMVParallel(parallel.NewPool(8), 2, x, 0, yPar)
	for i := range ySer {
		if math.Abs(ySer[i]-yPar[i]) > 1e-12 {
			t.Fatalf("parallel mismatch at %d: %g vs %g", i, ySer[i], yPar[i])
		}
	}
	// Nil pool falls back to serial.
	yNil := make([]float64, 800)
	a.SpMVParallel(nil, 2, x, 0, yNil)
	for i := range ySer {
		if ySer[i] != yNil[i] { //blobvet:allow floatcompare -- nil-pool fallback runs the identical serial kernel; equality asserts delegation
			t.Fatal("nil-pool fallback differs")
		}
	}
}

// SpMM on an identity B must reproduce the matrix densely.
func TestSpMMIdentity(t *testing.T) {
	n := 25
	a := RandomUniform(n, 0.3, 11)
	b := make([]float64, n*n)
	for i := 0; i < n; i++ {
		b[i+i*n] = 1
	}
	c := make([]float64, n*n)
	a.SpMM(n, 1, b, n, 0, c, n)
	d := a.ToDense()
	// SpMM accumulates in CSR order, ToDense in column order; equality is
	// only guaranteed up to rounding, so compare with a tolerance.
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			if math.Abs(c[i+j*n]-d.At(i, j)) > 1e-12 {
				t.Fatalf("SpMM identity mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestSpMMMatchesGemm(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	m, n := 40, 17
	dd := randDense(r, m, 0.2)
	a := FromDense(dd)
	b := make([]float64, m*n)
	for i := range b {
		b[i] = r.Float64()
	}
	cSp := make([]float64, m*n)
	cDense := make([]float64, m*n)
	a.SpMM(n, 1, b, m, 0, cSp, m)
	blas.RefDgemm(blas.NoTrans, blas.NoTrans, m, n, m, 1, dd.Data, dd.Ld, b, m, 0, cDense, m)
	for i := range cSp {
		if math.Abs(cSp[i]-cDense[i]) > 1e-10 {
			t.Fatalf("SpMM vs GEMM at %d: %g vs %g", i, cSp[i], cDense[i])
		}
	}
}

func TestRandomUniformProperties(t *testing.T) {
	n := 200
	a := RandomUniform(n, 0.05, 42)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	// Density near target.
	want := 0.05 * float64(n) * float64(n)
	if got := float64(a.NNZ()); got < want*0.8 || got > want*1.2 {
		t.Fatalf("nnz = %g, want ~%g", got, want)
	}
	// No empty rows.
	for i := 0; i < n; i++ {
		if a.RowPtr[i+1] == a.RowPtr[i] {
			t.Fatalf("row %d empty", i)
		}
	}
	// Deterministic for a seed.
	b := RandomUniform(n, 0.05, 42)
	if b.NNZ() != a.NNZ() || b.Vals[0] != a.Vals[0] { //blobvet:allow floatcompare -- generator determinism for a fixed seed is the property under test
		t.Fatal("generator not deterministic")
	}
	c := RandomUniform(n, 0.05, 43)
	if c.Vals[0] == a.Vals[0] && c.ColIdx[0] == a.ColIdx[0] && c.ColIdx[1] == a.ColIdx[1] { //blobvet:allow floatcompare -- different seeds diverging is the property under test
		t.Fatal("different seeds produced identical structure")
	}
}

func TestBanded(t *testing.T) {
	a := Banded(50, 2, 1)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	d := a.ToDense()
	for j := 0; j < 50; j++ {
		for i := 0; i < 50; i++ {
			inBand := i-j <= 2 && j-i <= 2
			if inBand && d.At(i, j) == 0 {
				t.Fatalf("band hole at (%d,%d)", i, j)
			}
			if !inBand && d.At(i, j) != 0 {
				t.Fatalf("entry outside band at (%d,%d)", i, j)
			}
		}
	}
	// Interior rows have 2*bw+1 entries.
	if got := a.RowPtr[26] - a.RowPtr[25]; got != 5 {
		t.Fatalf("interior row nnz = %d, want 5", got)
	}
}

func TestBytes(t *testing.T) {
	a := RandomUniform(100, 0.1, 1)
	want := int64(a.NNZ())*16 + int64(101)*8
	if a.Bytes() != want {
		t.Fatalf("Bytes = %d, want %d", a.Bytes(), want)
	}
}
