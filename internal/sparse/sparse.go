// Package sparse implements compressed sparse row (CSR) matrices and the
// sparse BLAS kernels (SpMV, SpMM) that the paper names as its final
// future-work item (§V): "we are currently working to support sparse BLAS
// computations in GPU-BLOB". The package provides the kernels, generators
// for a first representative problem family (uniform random sparsity and
// banded matrices), and conversions to and from the dense types.
package sparse

import (
	"fmt"
	"sort"

	"repro/internal/matrix"
	"repro/internal/parallel"
)

// CSR is a sparse Rows x Cols matrix of float64 values in compressed
// sparse row format: row i's entries are Cols[RowPtr[i]:RowPtr[i+1]] /
// Vals[RowPtr[i]:RowPtr[i+1]], with column indices strictly increasing
// within each row.
type CSR struct {
	Rows, NCols int
	RowPtr      []int
	ColIdx      []int
	Vals        []float64
}

// NNZ returns the number of stored entries.
func (a *CSR) NNZ() int { return len(a.Vals) }

// Triplet is one COO entry used to build a CSR matrix.
type Triplet struct {
	Row, Col int
	Val      float64
}

// FromTriplets builds a CSR matrix from COO entries. Duplicate (row, col)
// pairs are summed; explicit zeros are kept (BLAS semantics). Entries out
// of range return an error.
func FromTriplets(rows, cols int, ts []Triplet) (*CSR, error) {
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("sparse: negative shape %dx%d", rows, cols)
	}
	for _, t := range ts {
		if t.Row < 0 || t.Row >= rows || t.Col < 0 || t.Col >= cols {
			return nil, fmt.Errorf("sparse: entry (%d,%d) outside %dx%d", t.Row, t.Col, rows, cols)
		}
	}
	sorted := append([]Triplet(nil), ts...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Row != sorted[j].Row {
			return sorted[i].Row < sorted[j].Row
		}
		return sorted[i].Col < sorted[j].Col
	})
	a := &CSR{Rows: rows, NCols: cols, RowPtr: make([]int, rows+1)}
	for i := 0; i < len(sorted); {
		j := i
		v := 0.0
		for j < len(sorted) && sorted[j].Row == sorted[i].Row && sorted[j].Col == sorted[i].Col {
			v += sorted[j].Val
			j++
		}
		a.ColIdx = append(a.ColIdx, sorted[i].Col)
		a.Vals = append(a.Vals, v)
		a.RowPtr[sorted[i].Row+1]++
		i = j
	}
	for r := 0; r < rows; r++ {
		a.RowPtr[r+1] += a.RowPtr[r]
	}
	return a, nil
}

// FromDense converts a dense matrix, dropping exact zeros.
func FromDense(d *matrix.Dense64) *CSR {
	a := &CSR{Rows: d.Rows, NCols: d.Cols, RowPtr: make([]int, d.Rows+1)}
	for i := 0; i < d.Rows; i++ {
		for j := 0; j < d.Cols; j++ {
			if v := d.At(i, j); v != 0 {
				a.ColIdx = append(a.ColIdx, j)
				a.Vals = append(a.Vals, v)
			}
		}
		a.RowPtr[i+1] = len(a.Vals)
	}
	return a
}

// ToDense expands the matrix into a dense column-major one.
func (a *CSR) ToDense() *matrix.Dense64 {
	d := matrix.NewDense64(a.Rows, a.NCols)
	for i := 0; i < a.Rows; i++ {
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			d.Set(i, a.ColIdx[p], a.Vals[p])
		}
	}
	return d
}

// Validate checks the structural invariants; it returns nil for a
// well-formed matrix.
func (a *CSR) Validate() error {
	if len(a.RowPtr) != a.Rows+1 {
		return fmt.Errorf("sparse: rowptr length %d != rows+1 %d", len(a.RowPtr), a.Rows+1)
	}
	if a.RowPtr[0] != 0 || a.RowPtr[a.Rows] != len(a.Vals) || len(a.Vals) != len(a.ColIdx) {
		return fmt.Errorf("sparse: inconsistent storage lengths")
	}
	for i := 0; i < a.Rows; i++ {
		if a.RowPtr[i] > a.RowPtr[i+1] {
			return fmt.Errorf("sparse: rowptr not monotone at row %d", i)
		}
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			if a.ColIdx[p] < 0 || a.ColIdx[p] >= a.NCols {
				return fmt.Errorf("sparse: column %d out of range at row %d", a.ColIdx[p], i)
			}
			if p > a.RowPtr[i] && a.ColIdx[p] <= a.ColIdx[p-1] {
				return fmt.Errorf("sparse: columns not strictly increasing in row %d", i)
			}
		}
	}
	return nil
}

// SpMV computes y = alpha*A*x + beta*y serially. When beta == 0, y is
// written without being read (matching the dense kernels' contract).
func (a *CSR) SpMV(alpha float64, x []float64, beta float64, y []float64) {
	if len(x) < a.NCols || len(y) < a.Rows {
		panic("sparse: SpMV vector too short")
	}
	for i := 0; i < a.Rows; i++ {
		var sum float64
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			sum += a.Vals[p] * x[a.ColIdx[p]]
		}
		if beta == 0 {
			y[i] = alpha * sum
		} else {
			y[i] = alpha*sum + beta*y[i]
		}
	}
}

// SpMVParallel computes y = alpha*A*x + beta*y with rows distributed
// across the pool in nnz-balanced chunks (guided), since row lengths may
// be wildly uneven.
func (a *CSR) SpMVParallel(p *parallel.Pool, alpha float64, x []float64, beta float64, y []float64) {
	if len(x) < a.NCols || len(y) < a.Rows {
		panic("sparse: SpMV vector too short")
	}
	if p == nil || p.Workers() == 1 || a.NNZ() < 1<<14 {
		a.SpMV(alpha, x, beta, y)
		return
	}
	chunk := a.Rows/(4*p.Workers()) + 1
	p.ForChunked(a.Rows, chunk, func(_ int, r parallel.Range) {
		for i := r.Lo; i < r.Hi; i++ {
			var sum float64
			for q := a.RowPtr[i]; q < a.RowPtr[i+1]; q++ {
				sum += a.Vals[q] * x[a.ColIdx[q]]
			}
			if beta == 0 {
				y[i] = alpha * sum
			} else {
				y[i] = alpha*sum + beta*y[i]
			}
		}
	})
}

// SpMM computes the dense C = alpha*A*B + beta*C for dense column-major B
// (NCols x n) and C (Rows x n).
func (a *CSR) SpMM(n int, alpha float64, b []float64, ldb int, beta float64, c []float64, ldc int) {
	if ldb < a.NCols || ldc < a.Rows {
		panic("sparse: SpMM leading dimension too small")
	}
	for j := 0; j < n; j++ {
		bj := b[j*ldb:]
		cj := c[j*ldc:]
		for i := 0; i < a.Rows; i++ {
			var sum float64
			for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
				sum += a.Vals[p] * bj[a.ColIdx[p]]
			}
			if beta == 0 {
				cj[i] = alpha * sum
			} else {
				cj[i] = alpha*sum + beta*cj[i]
			}
		}
	}
}

// Bytes returns the memory footprint of the CSR storage (8-byte values,
// 8-byte ints), the denominator of sparse arithmetic intensity.
func (a *CSR) Bytes() int64 {
	return int64(len(a.Vals))*8 + int64(len(a.ColIdx))*8 + int64(len(a.RowPtr))*8
}

// --- generators -----------------------------------------------------------

// RandomUniform generates an n x n CSR matrix with the given target density
// in (0, 1], entries uniform in [0, 1), deterministic for a seed. At least
// one entry per row is placed so no row is empty.
func RandomUniform(n int, density float64, seed uint64) *CSR {
	if density <= 0 {
		density = 1.0 / float64(n)
	}
	if density > 1 {
		density = 1
	}
	rng := matrix.NewRNG(seed)
	perRow := int(density*float64(n) + 0.5)
	if perRow < 1 {
		perRow = 1
	}
	a := &CSR{Rows: n, NCols: n, RowPtr: make([]int, n+1)}
	cols := make([]int, 0, perRow)
	seen := make(map[int]bool, perRow)
	for i := 0; i < n; i++ {
		cols = cols[:0]
		for k := range seen {
			delete(seen, k)
		}
		for len(cols) < perRow {
			c := int(rng.Next()) % n
			if c < 0 {
				c = -c
			}
			if !seen[c] {
				seen[c] = true
				cols = append(cols, c)
			}
		}
		sort.Ints(cols)
		for _, c := range cols {
			a.ColIdx = append(a.ColIdx, c)
			a.Vals = append(a.Vals, rng.Float64())
		}
		a.RowPtr[i+1] = len(a.Vals)
	}
	return a
}

// Banded generates an n x n banded matrix with the given half-bandwidth
// (diagonals -bw..+bw populated), the canonical stencil/PDE sparsity.
func Banded(n, bw int, seed uint64) *CSR {
	rng := matrix.NewRNG(seed)
	a := &CSR{Rows: n, NCols: n, RowPtr: make([]int, n+1)}
	for i := 0; i < n; i++ {
		lo := i - bw
		if lo < 0 {
			lo = 0
		}
		hi := i + bw
		if hi >= n {
			hi = n - 1
		}
		for c := lo; c <= hi; c++ {
			a.ColIdx = append(a.ColIdx, c)
			a.Vals = append(a.Vals, rng.Float64())
		}
		a.RowPtr[i+1] = len(a.Vals)
	}
	return a
}
