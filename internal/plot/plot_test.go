package plot

//blobvet:file-allow floatcompare -- axis-scaling tests feed round decimal endpoints whose mapped coordinates are exact; equality asserts the affine map, not arithmetic

import (
	"math"
	"strings"
	"testing"
)

func lineChart() Chart {
	x := make([]float64, 50)
	y := make([]float64, 50)
	for i := range x {
		x[i] = float64(i + 1)
		y[i] = float64((i + 1) * (i + 1))
	}
	return Chart{
		Title: "t", XLabel: "n", YLabel: "gf",
		Curves: []Curve{{Label: "c1", X: x, Y: y}},
	}
}

func TestASCIIContainsMarksAndLegend(t *testing.T) {
	ch := lineChart()
	out := ch.ASCII(60, 12)
	if !strings.Contains(out, "*") {
		t.Fatal("no data marks rendered")
	}
	if !strings.Contains(out, "c1") {
		t.Fatal("legend missing")
	}
	if !strings.Contains(out, "t\n") {
		t.Fatal("title missing")
	}
}

func TestASCIIEmptyChart(t *testing.T) {
	ch := Chart{Title: "empty"}
	out := ch.ASCII(60, 12)
	if !strings.Contains(out, "(no data)") {
		t.Fatalf("empty chart rendering: %q", out)
	}
}

func TestASCIILogYSkipsNonPositive(t *testing.T) {
	ch := Chart{
		LogY: true,
		Curves: []Curve{{
			Label: "c",
			X:     []float64{1, 2, 3, 4},
			Y:     []float64{0, -1, 10, 100},
		}},
	}
	out := ch.ASCII(60, 12)
	if !strings.Contains(out, "*") {
		t.Fatal("positive points should render")
	}
}

func TestASCIIClampsDimensions(t *testing.T) {
	ch := lineChart()
	out := ch.ASCII(1, 1)
	if len(out) == 0 {
		t.Fatal("clamped chart should render")
	}
}

func TestASCIIHandlesNaN(t *testing.T) {
	ch := Chart{Curves: []Curve{{
		Label: "c",
		X:     []float64{1, 2, 3},
		Y:     []float64{1, math.NaN(), 3},
	}}}
	out := ch.ASCII(50, 10)
	if !strings.Contains(out, "*") {
		t.Fatal("valid points should survive NaN neighbours")
	}
}

func TestSVGWellFormedish(t *testing.T) {
	ch := lineChart()
	svg := ch.SVG(400, 300)
	for _, want := range []string{"<svg", "</svg>", "<polyline", "c1"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("svg missing %q", want)
		}
	}
	if strings.Count(svg, "<svg") != 1 {
		t.Fatal("svg element count")
	}
}

func TestSVGEscapesLabels(t *testing.T) {
	ch := Chart{
		Title:  `a<b&"c"`,
		Curves: []Curve{{Label: "x<y", X: []float64{1, 2}, Y: []float64{1, 2}}},
	}
	svg := ch.SVG(400, 300)
	if strings.Contains(svg, "a<b") || strings.Contains(svg, "x<y") {
		t.Fatal("labels not escaped")
	}
	if !strings.Contains(svg, "a&lt;b&amp;") {
		t.Fatal("escaped title missing")
	}
}

func TestSVGEmpty(t *testing.T) {
	ch := Chart{Title: "e"}
	svg := ch.SVG(400, 300)
	if !strings.Contains(svg, "(no data)") {
		t.Fatal("empty svg should say so")
	}
}

func TestDownsample(t *testing.T) {
	c := Curve{Label: "c"}
	for i := 0; i < 1000; i++ {
		c.X = append(c.X, float64(i))
		c.Y = append(c.Y, float64(2*i))
	}
	d := Downsample(c, 100)
	if len(d.X) != 100 || len(d.Y) != 100 {
		t.Fatalf("downsampled to %d/%d", len(d.X), len(d.Y))
	}
	if d.X[0] != 0 || d.X[99] != 999 {
		t.Fatalf("endpoints not kept: %g..%g", d.X[0], d.X[99])
	}
	// Monotone order preserved.
	for i := 1; i < len(d.X); i++ {
		if d.X[i] <= d.X[i-1] {
			t.Fatal("order broken")
		}
	}
	// No-ops.
	if got := Downsample(c, 2000); len(got.X) != 1000 {
		t.Fatal("maxPoints > len should be identity")
	}
	if got := Downsample(c, 1); len(got.X) != 1000 {
		t.Fatal("maxPoints < 2 should be identity")
	}
}

func TestSortByX(t *testing.T) {
	c := Curve{X: []float64{3, 1, 2}, Y: []float64{30, 10, 20}}
	SortByX(&c)
	if c.X[0] != 1 || c.X[2] != 3 || c.Y[0] != 10 || c.Y[2] != 30 {
		t.Fatalf("sorted: %v %v", c.X, c.Y)
	}
}

func TestMultiCurveMarkers(t *testing.T) {
	ch := Chart{Curves: []Curve{
		{Label: "a", X: []float64{1, 2}, Y: []float64{1, 1}},
		{Label: "b", X: []float64{1, 2}, Y: []float64{2, 2}},
	}}
	out := ch.ASCII(40, 10)
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatal("distinct markers per curve expected")
	}
}
