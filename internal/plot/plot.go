// Package plot renders GFLOP/s performance curves — the equivalent of the
// artifact's createGflopsGraphs.py — as ASCII charts for terminals and as
// standalone SVG files for reports. Only the standard library is used.
package plot

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Curve is one named line on a chart.
type Curve struct {
	Label string
	X     []float64
	Y     []float64
}

// Chart is a set of curves with axis labels.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Curves []Curve
	// LogY plots the y axis in log10 space (GFLOP/s curves span decades).
	LogY bool
}

// markers cycle through the curves of an ASCII chart.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// bounds returns the data extent over all curves.
func (c *Chart) bounds() (xmin, xmax, ymin, ymax float64, ok bool) {
	xmin, ymin = math.Inf(1), math.Inf(1)
	xmax, ymax = math.Inf(-1), math.Inf(-1)
	for _, cv := range c.Curves {
		for i := range cv.X {
			if i >= len(cv.Y) {
				break
			}
			x, y := cv.X[i], cv.Y[i]
			if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
				continue
			}
			if c.LogY && y <= 0 {
				continue
			}
			xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
			ymin, ymax = math.Min(ymin, y), math.Max(ymax, y)
		}
	}
	ok = xmin <= xmax && ymin <= ymax
	return
}

// ASCII renders the chart as a width x height character grid with a legend.
// Width and height are clamped to sane minimums.
func (c *Chart) ASCII(width, height int) string {
	if width < 40 {
		width = 40
	}
	if height < 10 {
		height = 10
	}
	xmin, xmax, ymin, ymax, ok := c.bounds()
	if !ok {
		return c.Title + "\n(no data)\n"
	}
	ty := func(y float64) float64 {
		if c.LogY {
			return math.Log10(y)
		}
		return y
	}
	lo, hi := ty(ymin), ty(ymax)
	if hi == lo { //blobvet:allow floatcompare -- degenerate-range guard: exact equality is when (hi-lo) would divide by zero
		hi = lo + 1
	}
	if xmax == xmin { //blobvet:allow floatcompare -- degenerate-range guard, as above
		xmax = xmin + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for ci, cv := range c.Curves {
		mark := markers[ci%len(markers)]
		for i := range cv.X {
			if i >= len(cv.Y) {
				break
			}
			y := cv.Y[i]
			if c.LogY && y <= 0 {
				continue
			}
			if math.IsNaN(y) || math.IsInf(y, 0) {
				continue
			}
			col := int((cv.X[i] - xmin) / (xmax - xmin) * float64(width-1))
			row := height - 1 - int((ty(y)-lo)/(hi-lo)*float64(height-1))
			if col < 0 || col >= width || row < 0 || row >= height {
				continue
			}
			grid[row][col] = mark
		}
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	yTop, yBot := ymax, ymin
	fmt.Fprintf(&b, "%10.4g ┤%s\n", yTop, string(grid[0]))
	for i := 1; i < height-1; i++ {
		fmt.Fprintf(&b, "%10s │%s\n", "", string(grid[i]))
	}
	fmt.Fprintf(&b, "%10.4g ┤%s\n", yBot, string(grid[height-1]))
	fmt.Fprintf(&b, "%10s └%s\n", "", strings.Repeat("─", width))
	fmt.Fprintf(&b, "%11s%-12.4g%*s%12.4g\n", "", xmin, width-22, "", xmax)
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(&b, "%11sx: %s    y: %s%s\n", "", c.XLabel, c.YLabel, logNote(c.LogY))
	}
	for ci, cv := range c.Curves {
		fmt.Fprintf(&b, "%11s%c %s\n", "", markers[ci%len(markers)], cv.Label)
	}
	return b.String()
}

func logNote(logY bool) string {
	if logY {
		return " (log scale)"
	}
	return ""
}

// svgPalette holds stroke colors for SVG curves.
var svgPalette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd",
	"#ff7f0e", "#8c564b", "#17becf", "#7f7f7f",
}

// SVG renders the chart as a standalone SVG document.
func (c *Chart) SVG(width, height int) string {
	if width < 200 {
		width = 200
	}
	if height < 120 {
		height = 120
	}
	const margin = 60
	xmin, xmax, ymin, ymax, ok := c.bounds()
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", width, height, width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="%d" y="20" font-family="sans-serif" font-size="14" text-anchor="middle">%s</text>`+"\n", width/2, xmlEscape(c.Title))
	if !ok {
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle">(no data)</text>`+"\n</svg>\n", width/2, height/2)
		return b.String()
	}
	ty := func(y float64) float64 {
		if c.LogY {
			return math.Log10(y)
		}
		return y
	}
	lo, hi := ty(ymin), ty(ymax)
	if hi == lo { //blobvet:allow floatcompare -- degenerate-range guard: exact equality is when (hi-lo) would divide by zero
		hi = lo + 1
	}
	if xmax == xmin { //blobvet:allow floatcompare -- degenerate-range guard, as above
		xmax = xmin + 1
	}
	plotW := float64(width - 2*margin)
	plotH := float64(height - 2*margin)
	px := func(x float64) float64 { return float64(margin) + (x-xmin)/(xmax-xmin)*plotW }
	py := func(y float64) float64 { return float64(height-margin) - (ty(y)-lo)/(hi-lo)*plotH }
	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n", margin, height-margin, width-margin, height-margin)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n", margin, margin, margin, height-margin)
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`+"\n", width/2, height-15, xmlEscape(c.XLabel))
	fmt.Fprintf(&b, `<text x="15" y="%d" font-family="sans-serif" font-size="11" text-anchor="middle" transform="rotate(-90 15 %d)">%s%s</text>`+"\n", height/2, height/2, xmlEscape(c.YLabel), logNote(c.LogY))
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="10">%.4g</text>`+"\n", margin, height-margin+15, xmin)
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="10" text-anchor="end">%.4g</text>`+"\n", width-margin, height-margin+15, xmax)
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="10" text-anchor="end">%.4g</text>`+"\n", margin-5, height-margin, ymin)
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="10" text-anchor="end">%.4g</text>`+"\n", margin-5, margin+5, ymax)
	for ci, cv := range c.Curves {
		color := svgPalette[ci%len(svgPalette)]
		var pts []string
		for i := range cv.X {
			if i >= len(cv.Y) {
				break
			}
			y := cv.Y[i]
			if (c.LogY && y <= 0) || math.IsNaN(y) || math.IsInf(y, 0) {
				continue
			}
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(cv.X[i]), py(y)))
		}
		if len(pts) > 0 {
			fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.5"/>`+"\n", strings.Join(pts, " "), color)
		}
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="11" fill="%s">%s</text>`+"\n", width-margin+5, margin+15*ci+10, color, xmlEscape(cv.Label))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// Downsample thins a curve to at most maxPoints, keeping endpoints. It is
// order-preserving and deterministic.
func Downsample(c Curve, maxPoints int) Curve {
	n := len(c.X)
	if maxPoints < 2 || n <= maxPoints {
		return c
	}
	out := Curve{Label: c.Label}
	step := float64(n-1) / float64(maxPoints-1)
	for i := 0; i < maxPoints; i++ {
		idx := int(math.Round(float64(i) * step))
		if idx >= n {
			idx = n - 1
		}
		out.X = append(out.X, c.X[idx])
		out.Y = append(out.Y, c.Y[idx])
	}
	return out
}

// SortByX sorts the curve points by ascending x, required by the renderers
// when data arrives from unordered CSV rows.
func SortByX(c *Curve) {
	idx := make([]int, len(c.X))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return c.X[idx[a]] < c.X[idx[b]] })
	x := make([]float64, len(c.X))
	y := make([]float64, len(c.Y))
	for i, j := range idx {
		x[i] = c.X[j]
		if j < len(c.Y) {
			y[i] = c.Y[j]
		}
	}
	c.X, c.Y = x, y
}
