package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/resilience"
	"repro/internal/service"
	"repro/pkg/blobclient"
)

// startGateway builds a gateway over an already-started replica
// cluster and returns its httptest server.
func startGateway(t *testing.T, nodes []*testNode) (*Gateway, *httptest.Server) {
	t.Helper()
	return startGatewayOpts(t, nodes, GatewayOptions{})
}

// startGatewayOpts is startGateway with explicit gateway options (the
// hedging and deadline tests need them).
func startGatewayOpts(t *testing.T, nodes []*testNode, opts GatewayOptions) (*Gateway, *httptest.Server) {
	t.Helper()
	members := make([]Member, len(nodes))
	for i, tn := range nodes {
		members[i] = Member{Name: tn.name, URL: tn.ts.URL}
	}
	pool, err := NewGatewayPool(Options{
		Members:      members,
		DownAfter:    2,
		ProbeTimeout: 2 * time.Second,
		Breaker:      testBreaker,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := NewGateway(pool, opts)
	ts := httptest.NewServer(g.Handler())
	t.Cleanup(func() {
		ts.Close()
		pool.Close()
	})
	return g, ts
}

func postJSON(t *testing.T, url string, body []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func mustMarshal(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestGatewayRoutesToOwner: identical threshold requests always land on
// the ring owner (X-Blob-Peer pins it), so one replica's cache serves
// the whole shard — and the cluster computes exactly one sweep.
func TestGatewayRoutesToOwner(t *testing.T) {
	nodes := startCluster(t, 3)
	_, ts := startGateway(t, nodes)
	ring := nodes[0].node.Pool().Ring()
	req, key := reqOwnedBy(t, ring, nodes[2].name)
	body := mustMarshal(t, req)

	for i := 0; i < 4; i++ {
		resp := postJSON(t, ts.URL+"/v1/threshold", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
		if peer := resp.Header.Get("X-Blob-Peer"); peer != ring.Owner(key) {
			t.Fatalf("request %d served by %q, want owner %q", i, peer, ring.Owner(key))
		}
		resp.Body.Close()
	}
	var total int64
	for _, tn := range nodes {
		total += tn.sweeps.Load()
	}
	if total != 1 {
		t.Fatalf("cluster ran %d sweeps for one shard, want 1", total)
	}
	if got := nodes[2].sweeps.Load(); got != 1 {
		t.Fatalf("owner ran %d sweeps, want 1", got)
	}
}

// TestGatewayFailover: with the owner dead, the gateway reroutes to the
// next ring owner and still answers 200; the dead peer's breaker opens
// so later requests skip it without a dial; after revival and the
// breaker's probe window, traffic returns to the owner.
func TestGatewayFailover(t *testing.T) {
	nodes := startCluster(t, 3)
	g, ts := startGateway(t, nodes)
	ring := nodes[0].node.Pool().Ring()
	req, key := reqOwnedBy(t, ring, nodes[1].name)
	body := mustMarshal(t, req)
	owners := ring.Owners(key, 3)

	nodes[1].kill()
	resp := postJSON(t, ts.URL+"/v1/threshold", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("failover request: status %d", resp.StatusCode)
	}
	if peer := resp.Header.Get("X-Blob-Peer"); peer != owners[1] {
		t.Fatalf("served by %q, want failover owner %q", peer, owners[1])
	}
	resp.Body.Close()
	if st := g.pool.Breaker(nodes[1].name).State(); st != resilience.Open {
		t.Fatalf("dead owner's breaker is %v, want open", st)
	}

	// Next request: the open breaker skips the dead owner without a dial.
	resp = postJSON(t, ts.URL+"/v1/threshold", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("skip request: status %d", resp.StatusCode)
	}
	resp.Body.Close()

	metrics := getBody(t, ts.URL+"/metrics")
	for _, want := range []string{"blob_gateway_reroutes_total 1", "blob_gateway_breaker_skips_total 1"} {
		if !strings.Contains(metrics, want) {
			t.Errorf("gateway metrics missing %q:\n%s", want, metrics)
		}
	}

	nodes[1].revive()
	time.Sleep(testBreaker.OpenTimeout + 10*time.Millisecond)
	resp = postJSON(t, ts.URL+"/v1/threshold", body)
	if peer := resp.Header.Get("X-Blob-Peer"); peer != owners[0] {
		t.Fatalf("after revival served by %q, want owner %q", peer, owners[0])
	}
	resp.Body.Close()
}

// TestGatewayBreakerDiscipline: replica-level 4xx answers and
// client-side cancellation must never trip a peer's breaker — only
// transport failures speak to peer health.
func TestGatewayBreakerDiscipline(t *testing.T) {
	nodes := startCluster(t, 3)
	g, ts := startGateway(t, nodes)

	// A dispatch batch for an unknown system routes fine (routing is by
	// name) but the replica answers 400. Hammer it: breakers stay closed.
	bad := []byte(`{"system":"no-such-system","calls":[{"kernel":"gemm","m":8,"n":8,"k":8,"precision":"f64"}]}`)
	var servedBy string
	for i := 0; i < 6; i++ {
		resp := postJSON(t, ts.URL+"/v1/dispatch", bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400 relayed from the replica", resp.StatusCode)
		}
		servedBy = resp.Header.Get("X-Blob-Peer")
		resp.Body.Close()
	}
	if st := g.pool.Breaker(servedBy).State(); st != resilience.Closed {
		t.Fatalf("6 relayed 400s left %s's breaker %v, want closed", servedBy, st)
	}

	// Client cancellation mid-request: the serving peer's breaker must
	// not record a failure.
	req, _ := reqOwnedBy(t, nodes[0].node.Pool().Ring(), nodes[2].name)
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		ts.URL+"/v1/threshold", bytes.NewReader(mustMarshal(t, req)))
	if err != nil {
		t.Fatal(err)
	}
	httpReq.Header.Set("Content-Type", "application/json")
	if resp, err := http.DefaultClient.Do(httpReq); err == nil {
		resp.Body.Close()
	}
	for _, tn := range nodes {
		if st := g.pool.Breaker(tn.name).State(); st != resilience.Closed {
			t.Fatalf("client cancellation left %s's breaker %v, want closed", tn.name, st)
		}
	}
}

// TestGatewayNoPeer: with every replica dead, the gateway answers the
// uniform rejection contract: 503, code no_peer, Retry-After mirrored.
func TestGatewayNoPeer(t *testing.T) {
	nodes := startCluster(t, 3)
	_, ts := startGateway(t, nodes)
	for _, tn := range nodes {
		tn.kill()
	}
	body := mustMarshal(t, thresholdReq(32))
	resp := postJSON(t, ts.URL+"/v1/threshold", body)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") != "1" {
		t.Fatalf("Retry-After %q, want \"1\"", resp.Header.Get("Retry-After"))
	}
	var env struct {
		Schema string            `json:"schema"`
		Error  *service.APIError `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.Schema != service.SchemaError || env.Error == nil || env.Error.Code != "no_peer" {
		t.Fatalf("envelope %+v, want schema error with code no_peer", env)
	}
	if env.Error.RetryAfterS != 1 {
		t.Fatalf("retry_after_s %d does not mirror the header", env.Error.RetryAfterS)
	}
}

// TestGatewayRejectsBadRequests: garbage is rejected at the gateway
// with the replicas' own contract, before touching the ring.
func TestGatewayRejectsBadRequests(t *testing.T) {
	nodes := startCluster(t, 1)
	_, ts := startGateway(t, nodes)
	cases := []struct {
		path, body string
	}{
		{"/v1/threshold", `{"system":"dawn","kernel":"gemv","precision":"f64","bogus":1}`},
		{"/v1/threshold", `{"system":"no-such","kernel":"gemv","precision":"f64"}`},
		{"/v1/dispatch", `{"calls":[]}`},
		{"/v1/dispatch", `not json`},
	}
	for _, tc := range cases {
		resp := postJSON(t, ts.URL+tc.path, []byte(tc.body))
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s %q: status %d, want 400", tc.path, tc.body, resp.StatusCode)
		}
		resp.Body.Close()
	}
	if got := nodes[0].sweeps.Load(); got != 0 {
		t.Fatalf("bad requests reached a replica backend (%d sweeps)", got)
	}
}

// TestGatewayHealthAndReady: the gateway speaks the same health
// contract as the replicas — /healthz is liveness, /readyz tracks
// whether any replica is in the ring.
func TestGatewayHealthAndReady(t *testing.T) {
	nodes := startCluster(t, 2)
	g, ts := startGateway(t, nodes)
	cl := blobclient.New(blobclient.Options{BaseURL: ts.URL})
	ctx := context.Background()

	if _, err := cl.Health(ctx); err != nil {
		t.Fatalf("gateway /healthz: %v", err)
	}
	ready, err := cl.Ready(ctx)
	if err != nil {
		t.Fatalf("gateway /readyz: %v", err)
	}
	if ready.Status != "ready" {
		t.Fatalf("ready status %q", ready.Status)
	}

	// Empty ring -> not ready (but still alive).
	for _, tn := range nodes {
		rep := Member{Name: tn.name, URL: tn.ts.URL}
		if err := g.pool.Apply(Message{Type: TypeLeave, From: rep}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cl.Ready(ctx); err == nil || !strings.Contains(err.Error(), "not_ready") {
		t.Fatalf("empty ring readyz = %v, want not_ready", err)
	}
	if _, err := cl.Health(ctx); err != nil {
		t.Fatalf("gateway liveness followed readiness down: %v", err)
	}
}

// TestGatewayRouteOverhead is the cluster/route-overhead SLO in test
// form: routing a request to a replica whose cache already holds the
// shard must cost under 1ms at the p99, in-process. The benchmark
// suite records the same path in BENCH artifacts.
func TestGatewayRouteOverhead(t *testing.T) {
	if raceEnabled {
		t.Skip("latency SLO is calibrated without race-detector instrumentation; routing behaviour is covered by the other gateway tests")
	}
	nodes := startCluster(t, 3)
	_, ts := startGateway(t, nodes)
	body := mustMarshal(t, thresholdReq(64))

	const warm, reps = 20, 200
	lat := make([]float64, 0, reps)
	for i := 0; i < warm+reps; i++ {
		began := time.Now()
		resp := postJSON(t, ts.URL+"/v1/threshold", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("rep %d: status %d", i, resp.StatusCode)
		}
		// Drain so the keep-alive connection is reused; otherwise every
		// rep pays a fresh dial and the tail measures TCP, not routing.
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if i >= warm {
			lat = append(lat, time.Since(began).Seconds())
		}
	}
	sort.Float64s(lat)
	p50 := lat[len(lat)/2]
	p99 := lat[len(lat)*99/100]
	t.Logf("route overhead over a cached shard: p50 %.3fms p99 %.3fms", p50*1e3, p99*1e3)
	if p99 >= 1e-3 {
		t.Errorf("gateway routing p99 %.3fms, SLO < 1ms", p99*1e3)
	}
}

func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}
