package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
)

// Ring is an immutable consistent-hash ring over a member set. Each
// member is projected onto the ring at VNodes points (hash64 of
// "name#i"), and a key is owned by the first point clockwise of the
// key's own hash. Immutability is what makes rebuilds deterministic: a
// ring is a pure function of the sorted member set and the vnode count,
// so every replica that agrees on who is healthy agrees on who owns
// what — no coordination protocol, no ordering sensitivity. Losing a
// member remaps only the keys it owned (they fall through to the next
// point clockwise); rejoining restores exactly the original assignment.
type Ring struct {
	vnodes  int
	members []string // sorted, deduplicated
	points  []ringPoint
}

type ringPoint struct {
	hash   uint64
	member string
}

// DefaultVNodes is the virtual-node count per member when the caller
// passes <= 0: enough points that three members split keys within a few
// percent of evenly, cheap enough that a rebuild is microseconds.
const DefaultVNodes = 64

// NewRing builds a ring over members (deduplicated, order-insensitive).
// An empty member set yields a ring that owns nothing.
func NewRing(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	set := map[string]bool{}
	for _, m := range members {
		if m != "" {
			set[m] = true
		}
	}
	r := &Ring{vnodes: vnodes, members: make([]string, 0, len(set))}
	for m := range set {
		r.members = append(r.members, m)
	}
	sort.Strings(r.members)
	r.points = make([]ringPoint, 0, len(r.members)*vnodes)
	for _, m := range r.members {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", m, i)), member: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// A full 64-bit collision between vnode labels is vanishingly
		// rare; break it by name so the order — and thus ownership — is
		// still deterministic.
		return r.points[i].member < r.points[j].member
	})
	return r
}

// Members returns the sorted member set the ring was built over.
func (r *Ring) Members() []string {
	out := make([]string, len(r.members))
	copy(out, r.members)
	return out
}

// Owner returns the member owning key ("" on an empty ring).
func (r *Ring) Owner(key string) string {
	owners := r.Owners(key, 1)
	if len(owners) == 0 {
		return ""
	}
	return owners[0]
}

// Owners returns up to n distinct members in preference order for key:
// the owner first, then the members next clockwise — the failover
// order a gateway tries when the owner is unreachable.
func (r *Ring) Owners(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := map[string]bool{}
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, p.member)
		}
	}
	return out
}

// Fingerprint is a short, deterministic digest of the member set (not
// the vnode layout — vnodes are derived). Heartbeat messages carry it so
// replicas can log when their views of the ring diverge.
func (r *Ring) Fingerprint() string {
	sum := sha256.Sum256([]byte(strings.Join(r.members, "\n")))
	return hex.EncodeToString(sum[:8])
}

// hash64 is the ring's point hash: the first 8 bytes of SHA-256,
// big-endian. FNV-1a would be cheaper but avalanches poorly on the
// short sequential vnode labels ("a#0", "a#1", ...), skewing arc
// ownership badly; SHA-256 spreads them uniformly, is stable across
// processes and releases (the determinism contract), and costs ~100ns
// per lookup — noise next to the HTTP hop it routes.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}
