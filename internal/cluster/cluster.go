// Package cluster shards the advisor service across a consistent-hash
// ring of replicas, the robustness layer that turns one admission-
// queued blob-served process into a fleet: a deterministic ring with
// virtual nodes (ring.go) keyed by the same canonical identity the
// service caches results under (service.ThresholdRouteKey, built on
// core.Config.Hash), a client pool (pool.go) holding one typed
// blobclient and one circuit breaker per peer with heartbeat-driven
// health over /readyz, a tiny membership wire protocol (wire.go:
// hello / leave / heartbeat, strict-parsed because it is network
// input), a peer cache-fill path so a replica that misses its local
// LRU asks the shard owner before paying for a sweep, and a routing
// gateway (gateway.go) that proxies requests byte-transparently to the
// owning replica with breaker-guarded failover to the next ring owner.
//
// The design invariant, inherited from the paper's reproducibility
// contract: routing and failover may change where a verdict is
// computed and how fast it arrives, never what it says. The cluster
// soak profile (cmd/blob-soak -profiles cluster) proves it by
// comparing every verdict served through a kill/rejoin chaos run
// byte-for-byte against a single-node reference.
package cluster

import (
	"context"
	"encoding/json"
	"io"
	"net/http"

	"repro/internal/service"
)

// Node bundles one replica: its service.Server and its cluster Pool,
// wired so a local threshold cache miss consults the pool's peer-fill
// path. Construct the service with Options.PeerFill = pool.FillThreshold()
// (NewNode checks nothing — the wiring is the caller's, because the
// service must be built after the pool).
type Node struct {
	pool *Pool
	svc  *service.Server
}

// NewNode bundles a pool and the service built around it.
func NewNode(pool *Pool, svc *service.Server) *Node {
	return &Node{pool: pool, svc: svc}
}

// Pool returns the node's cluster pool.
func (n *Node) Pool() *Pool { return n.pool }

// Service returns the node's service.
func (n *Node) Service() *service.Server { return n.svc }

// Handler returns the replica's full HTTP surface: the service's
// routed handler plus the cluster membership endpoint.
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/cluster/v1/hello", n.pool.HelloHandler())
	mux.Handle("/", n.svc.Handler())
	return mux
}

// Drain runs the peer-visible half of the drain order: flip the
// replica not-ready (ring-leave — /readyz starts answering 503) and
// broadcast a leave message so peers drop it from their rings without
// waiting for probes. The caller then stops accepting connections and
// finally closes the service, which flushes in-flight sweeps and
// stamps blob_drain_seconds.
func (n *Node) Drain(ctx context.Context) {
	n.svc.BeginDrain()
	n.pool.BroadcastLeave(ctx)
}

// Close stops the pool's heartbeat loop and closes the service.
func (n *Node) Close() {
	n.pool.Close()
	n.svc.Close()
}

// HelloHandler serves POST /cluster/v1/hello: strict-parse one
// membership message, fold it into the table, and answer with this
// member's own heartbeat (identity plus ring fingerprint) so a hello
// exchange doubles as a view comparison.
func (p *Pool) HelloHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			writeWireError(w, http.StatusMethodNotAllowed, "method_not_allowed", "use POST")
			return
		}
		body, err := readLimit(r, 1<<16)
		if err != nil {
			writeWireError(w, http.StatusBadRequest, "bad_request", err.Error())
			return
		}
		msg, err := ParseMessage(body)
		if err != nil {
			writeWireError(w, http.StatusBadRequest, "bad_request", err.Error())
			return
		}
		if err := p.Apply(msg); err != nil {
			writeWireError(w, http.StatusBadRequest, "bad_request", err.Error())
			return
		}
		ack := Message{Type: TypeHeartbeat, From: p.self, Ring: p.Ring().Fingerprint()}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(ack)
	})
}

// readLimit reads at most limit bytes of request body.
func readLimit(r *http.Request, limit int64) ([]byte, error) {
	defer r.Body.Close()
	return io.ReadAll(http.MaxBytesReader(nil, r.Body, limit))
}

// writeWireError writes the service's unified v1 error envelope, so
// cluster-internal endpoints reject with the same shape clients
// already parse.
func writeWireError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(service.Envelope{
		Schema: service.SchemaError,
		Error:  &service.APIError{Code: code, Message: msg},
	})
}
