package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"repro/internal/resilience"
	"repro/internal/service"
	"repro/pkg/blobclient"
)

// Options configures a Pool. Self and Members are required; everything
// else has serviceable defaults.
type Options struct {
	// Self is this replica's member name; it must appear in Members. A
	// gateway (a router that serves no shard itself) uses NewGatewayPool
	// instead, which has no self.
	Self string
	// Members is the static cluster roster: every replica, self included.
	// Hello messages can introduce members beyond this list (rejoin with
	// a new URL), but the roster is the deterministic starting point.
	Members []Member
	// VNodes is the virtual-node count per member (<= 0 takes
	// DefaultVNodes).
	VNodes int
	// DownAfter is how many consecutive failed health probes mark a peer
	// down and rebuild the ring without it (default 2 — one flaky probe
	// must not shuffle shard ownership).
	DownAfter int
	// Heartbeat is the period of the background health loop started by
	// Start; <= 0 disables the loop (tests drive CheckNow directly).
	Heartbeat time.Duration
	// ProbeTimeout bounds one /readyz health probe (default 1s).
	ProbeTimeout time.Duration
	// FillTimeout bounds one peer cache fill (default 2s); a slow owner
	// must cost less than the local sweep the fill is trying to avoid.
	FillTimeout time.Duration
	// HTTPClient replaces http.DefaultClient for all peer traffic.
	HTTPClient *http.Client
	// Breaker tunes the per-peer circuit breakers (zero value takes
	// resilience defaults). One breaker guards each peer across probes,
	// fills and gateway proxying, so a dead peer fails fast everywhere.
	Breaker resilience.BreakerConfig
	// Retry is the retry policy for typed peer calls (fills). The zero
	// value makes one attempt, which is usually right: the fallback for
	// a failed fill is a local sweep, not a retry storm.
	Retry resilience.RetryPolicy
	// Logger receives membership and health transitions; nil discards.
	Logger *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.VNodes <= 0 {
		o.VNodes = DefaultVNodes
	}
	if o.DownAfter <= 0 {
		o.DownAfter = 2
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = time.Second
	}
	if o.FillTimeout <= 0 {
		o.FillTimeout = 2 * time.Second
	}
	if o.HTTPClient == nil {
		o.HTTPClient = http.DefaultClient
	}
	if o.Logger == nil {
		o.Logger = slog.New(slog.NewJSONHandler(io.Discard, nil))
	}
	return o
}

// peer is the pool's view of one remote member.
type peer struct {
	member  Member
	client  *blobclient.Client
	breaker *resilience.Breaker
	up      bool
	misses  int
}

// Pool is the cluster client pool: the membership table, one typed
// client and one circuit breaker per remote peer, heartbeat-driven
// health, and the consistent-hash ring rebuilt deterministically from
// whichever members are currently healthy. It is the one sanctioned
// home of go statements in this package (blob-vet's goroutinehygiene
// analyzer covers internal/cluster): the heartbeat loop lives in Start.
//
// Health is pull-based and deterministic: a probe of each peer's
// /readyz (readiness, not liveness — a draining replica answers 503 and
// leaves the ring before its listener closes). DownAfter consecutive
// misses mark a peer down; one success marks it back up. Push messages
// (hello / leave / heartbeat, folded in via Apply) shortcut the probe
// cycle so a graceful drain leaves the ring immediately.
type Pool struct {
	opts Options
	self Member // zero for a gateway pool
	log  *slog.Logger

	mu    sync.Mutex
	peers map[string]*peer
	ring  *Ring

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

// ErrConfig reports invalid Options at pool construction.
var ErrConfig = errors.New("cluster: invalid pool configuration")

// ErrUnknownMember reports a peer name absent from the membership table.
var ErrUnknownMember = errors.New("cluster: unknown member")

// NewPool builds a replica's pool. Self must name an entry of Members.
func NewPool(opts Options) (*Pool, error) {
	if opts.Self == "" {
		return nil, fmt.Errorf("%w: Options.Self is required (use NewGatewayPool for a self-less pool)", ErrConfig)
	}
	return newPool(opts)
}

// NewGatewayPool builds a pool with no self: every member is a remote
// peer, and the ring spans whichever of them are healthy. This is what
// cmd/blob-gateway routes with.
func NewGatewayPool(opts Options) (*Pool, error) {
	opts.Self = ""
	return newPool(opts)
}

func newPool(opts Options) (*Pool, error) {
	opts = opts.withDefaults()
	p := &Pool{
		opts:  opts,
		log:   opts.Logger,
		peers: map[string]*peer{},
		stop:  make(chan struct{}),
	}
	if len(opts.Members) == 0 {
		return nil, errors.New("cluster: Options.Members is empty")
	}
	foundSelf := false
	for _, m := range opts.Members {
		if err := m.Validate(); err != nil {
			return nil, err
		}
		if m.Name == opts.Self {
			foundSelf = true
			p.self = m
			continue
		}
		if _, dup := p.peers[m.Name]; dup {
			return nil, fmt.Errorf("cluster: duplicate member %q", m.Name)
		}
		p.peers[m.Name] = p.newPeer(m)
	}
	if opts.Self != "" && !foundSelf {
		return nil, fmt.Errorf("cluster: Self %q not in Members", opts.Self)
	}
	p.rebuildLocked()
	return p, nil
}

// newPeer constructs the typed client and breaker for one remote
// member. The blobclient's own breaker is neutralized (MinRequests far
// above any real volume): the pool-level breaker is the single
// authority for this peer, shared by probes, fills and gateway routing.
func (p *Pool) newPeer(m Member) *peer {
	return &peer{
		member: m,
		client: blobclient.New(blobclient.Options{
			BaseURL:    m.URL,
			HTTPClient: p.opts.HTTPClient,
			Retry:      p.opts.Retry,
			Breaker:    resilience.BreakerConfig{MinRequests: 1 << 30},
		}),
		breaker: resilience.NewBreaker(p.opts.Breaker),
		up:      true, // optimistic: a static roster serves before the first probe
	}
}

// rebuildLocked recomputes the ring from the healthy member set. Caller
// holds p.mu. The ring is a pure function of the sorted healthy names,
// so loss and rejoin rebuild byte-identical assignments on every
// replica that shares the same health view.
func (p *Pool) rebuildLocked() {
	names := make([]string, 0, len(p.peers)+1)
	if p.self.Name != "" {
		names = append(names, p.self.Name)
	}
	for name, pr := range p.peers {
		if pr.up {
			names = append(names, name)
		}
	}
	p.ring = NewRing(names, p.opts.VNodes)
}

// Self returns this replica's member name ("" for a gateway pool).
func (p *Pool) Self() string { return p.self.Name }

// Ring returns the current ring snapshot (immutable; safe to hold).
func (p *Pool) Ring() *Ring {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ring
}

// Owners returns up to n healthy members in preference order for key.
func (p *Pool) Owners(key string, n int) []string {
	return p.Ring().Owners(key, n)
}

// Healthy reports whether a member is currently in the ring.
func (p *Pool) Healthy(name string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if name == p.self.Name && name != "" {
		return true
	}
	pr, ok := p.peers[name]
	return ok && pr.up
}

// Members returns the full roster (self plus every known peer, up or
// down), sorted by name via the ring of all members.
func (p *Pool) Members() []Member {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Member, 0, len(p.peers)+1)
	if p.self.Name != "" {
		out = append(out, p.self)
	}
	for _, pr := range p.peers {
		out = append(out, pr.member)
	}
	sortMembers(out)
	return out
}

// Breaker returns the circuit breaker guarding one remote peer (nil for
// self or an unknown name).
func (p *Pool) Breaker(name string) *resilience.Breaker {
	p.mu.Lock()
	defer p.mu.Unlock()
	if pr, ok := p.peers[name]; ok {
		return pr.breaker
	}
	return nil
}

// MemberURL resolves a member name to its base URL.
func (p *Pool) MemberURL(name string) (string, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if name == p.self.Name && name != "" {
		return p.self.URL, true
	}
	if pr, ok := p.peers[name]; ok {
		return pr.member.URL, true
	}
	return "", false
}

// Start launches the background heartbeat loop (no-op when
// Options.Heartbeat <= 0). Each tick announces a heartbeat message to
// every known peer and then probes every peer's /readyz. The loop stops
// when ctx is cancelled or Close is called. The go statement is
// sanctioned here: Start is a Pool method (goroutinehygiene).
func (p *Pool) Start(ctx context.Context) {
	if p.opts.Heartbeat <= 0 {
		return
	}
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		t := time.NewTicker(p.opts.Heartbeat)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-p.stop:
				return
			case <-t.C:
				p.Heartbeat(ctx)
			}
		}
	}()
}

// Close stops the heartbeat loop and waits for it. It does not touch
// peer state; a drained pool's last ring view stays readable.
func (p *Pool) Close() {
	p.stopOnce.Do(func() { close(p.stop) })
	p.wg.Wait()
}

// Heartbeat performs one full heartbeat tick synchronously: announce a
// heartbeat message (with the ring fingerprint) to every known peer,
// then probe every peer's readiness.
func (p *Pool) Heartbeat(ctx context.Context) {
	p.announce(ctx, TypeHeartbeat)
	p.CheckNow(ctx)
}

// CheckNow probes every known remote peer's /readyz once, synchronously,
// and folds the outcomes into the health table (DownAfter consecutive
// misses take a peer out of the ring; one success puts it back).
// Deterministic by construction, so the soak harness and tests call it
// directly instead of racing a background loop.
func (p *Pool) CheckNow(ctx context.Context) {
	for _, pr := range p.snapshot() {
		pctx, cancel := context.WithTimeout(ctx, p.opts.ProbeTimeout)
		_, err := pr.client.Ready(pctx)
		cancel()
		p.recordProbe(pr.member.Name, err)
	}
}

// snapshot copies the remote-peer list out from under the mutex so
// probes and sends never hold it.
func (p *Pool) snapshot() []*peer {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*peer, 0, len(p.peers))
	for _, pr := range p.peers {
		out = append(out, pr)
	}
	return out
}

// recordProbe folds one probe outcome into the health table. The
// breaker is recorded before the pool lock is taken: Record can fire a
// caller-supplied OnStateChange, which must never run under p.mu.
func (p *Pool) recordProbe(name string, err error) {
	if br := p.Breaker(name); br != nil {
		br.Record(probeOutcome(err))
	}
	p.mu.Lock()
	pr, ok := p.peers[name]
	if !ok {
		p.mu.Unlock()
		return
	}
	var transition string
	switch {
	case err == nil:
		pr.misses = 0
		if !pr.up {
			pr.up = true
			transition = "up"
			p.rebuildLocked()
		}
	default:
		pr.misses++
		if pr.up && pr.misses >= p.opts.DownAfter {
			pr.up = false
			transition = "down"
			p.rebuildLocked()
		}
	}
	fp := p.ring.Fingerprint()
	p.mu.Unlock()
	if transition != "" {
		p.log.Warn("cluster: peer health transition",
			"peer", name, "state", transition, "ring", fp, "err", fmt.Sprint(err))
	}
}

// probeOutcome maps a probe error onto the breaker discipline: context
// cancellation proves nothing about the peer, a 4xx is our fault, and a
// well-formed 503 "not_ready" is a deliberate answer from a live, draining
// replica — it takes the peer out of the ring (the health table handles
// that) but must not trip its breaker, or a graceful drain would look like
// an outage to every pool watching. Everything else (transport errors,
// other 5xx) counts against the peer.
func probeOutcome(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return nil
	}
	var ae *blobclient.APIError
	if errors.As(err, &ae) {
		if ae.Status < 500 && ae.Status != http.StatusTooManyRequests {
			return nil
		}
		if ae.Code == "not_ready" {
			return nil
		}
	}
	return err
}

// Apply folds one membership message into the table: hello/heartbeat
// mark the sender up (introducing it if unknown, refreshing its URL if
// moved); leave marks it down immediately — the ring-leave step of a
// graceful drain, ahead of the probes noticing.
func (p *Pool) Apply(msg Message) error {
	if err := msg.Validate(); err != nil {
		return err
	}
	if msg.From.Name == p.self.Name && p.self.Name != "" {
		return nil
	}
	p.mu.Lock()
	pr, known := p.peers[msg.From.Name]
	changed := false
	switch msg.Type {
	case TypeHello, TypeHeartbeat:
		if !known {
			pr = p.newPeer(msg.From)
			p.peers[msg.From.Name] = pr
			changed = true
		} else if pr.member.URL != msg.From.URL {
			// The member moved; rebuild its client so traffic follows.
			np := p.newPeer(msg.From)
			np.up, np.misses = pr.up, pr.misses
			p.peers[msg.From.Name] = np
			pr = np
		}
		pr.misses = 0
		if !pr.up {
			pr.up = true
			changed = true
		}
	case TypeLeave:
		if known && pr.up {
			pr.up = false
			// A leave is deliberate; require a fresh success to rejoin.
			pr.misses = p.opts.DownAfter
			changed = true
		}
	}
	if changed {
		p.rebuildLocked()
	}
	fp := p.ring.Fingerprint()
	p.mu.Unlock()
	if changed {
		p.log.Info("cluster: membership change",
			"type", msg.Type, "from", msg.From.Name, "ring", fp)
	}
	return nil
}

// BroadcastLeave announces this member's departure to every known peer
// — the ring-leave step of drain, run before the listener stops
// accepting. Best effort: an unreachable peer will notice via probes.
func (p *Pool) BroadcastLeave(ctx context.Context) {
	p.announce(ctx, TypeLeave)
}

// AnnounceHello announces this member to every known peer (start and
// rejoin).
func (p *Pool) AnnounceHello(ctx context.Context) {
	p.announce(ctx, TypeHello)
}

// announce sends one membership message about self to every known peer.
// Gateway pools (no self) have nothing to announce.
func (p *Pool) announce(ctx context.Context, typ string) {
	if p.self.Name == "" {
		return
	}
	msg := Message{Type: typ, From: p.self, Ring: p.Ring().Fingerprint()}
	body, err := json.Marshal(msg)
	if err != nil {
		return
	}
	for _, pr := range p.snapshot() {
		sctx, cancel := context.WithTimeout(ctx, p.opts.ProbeTimeout)
		resp, err := p.postRaw(sctx, pr.member.URL+"/cluster/v1/hello", body, nil)
		cancel()
		if err != nil {
			p.log.Debug("cluster: announce failed", "type", typ, "peer", pr.member.Name, "err", err)
			continue
		}
		drainBody(resp)
	}
}

// FillThreshold returns the service.PeerFillFunc wiring this pool into
// a replica: on a local cache miss the service asks the shard's ring
// owner over /v1/threshold (marked with service.PeerFillHeader so the
// owner never fans out another fill), guarded by the owner's circuit
// breaker, before the caller falls back to a local sweep. (nil, nil)
// when this replica owns the shard or no healthy remote owner exists.
func (p *Pool) FillThreshold() service.PeerFillFunc {
	return func(ctx context.Context, req service.ThresholdRequest, key string) (*service.ThresholdResponse, error) {
		name, cl, br := p.fillTarget(key)
		if cl == nil {
			return nil, nil
		}
		if err := br.Allow(); err != nil {
			return nil, fmt.Errorf("cluster: peer fill %s refused: %w", name, err)
		}
		fctx, cancel := context.WithTimeout(ctx, p.opts.FillTimeout)
		defer cancel()
		resp, err := cl.ThresholdPeer(fctx, req, p.self.Name)
		br.Record(probeOutcome(err))
		if err != nil {
			return nil, fmt.Errorf("cluster: peer fill from %s: %w", name, err)
		}
		resp.FilledFrom = name
		return resp, nil
	}
}

// fillTarget resolves the ring owner of key to a remote peer's typed
// client (nil when the owner is self, unknown, or there is no ring).
func (p *Pool) fillTarget(key string) (string, *blobclient.Client, *resilience.Breaker) {
	p.mu.Lock()
	defer p.mu.Unlock()
	owner := p.ring.Owner(key)
	if owner == "" || owner == p.self.Name {
		return "", nil, nil
	}
	pr, ok := p.peers[owner]
	if !ok {
		return "", nil, nil
	}
	return owner, pr.client, pr.breaker
}

// Post proxies one raw JSON POST to a named member, forwarding body
// bytes unmodified (the gateway's routing primitive — byte-transparent
// so routing can never change a verdict). The caller owns the response
// body and the breaker bookkeeping.
func (p *Pool) Post(ctx context.Context, name, path string, body []byte, hdr http.Header) (*http.Response, error) {
	base, ok := p.MemberURL(name)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownMember, name)
	}
	return p.postRaw(ctx, base+path, body, hdr)
}

// PostResult is one delivery from PostAsync: the peer that was asked, and
// either its response (caller closes the body) or the transport error.
type PostResult struct {
	Peer string
	Resp *http.Response
	Err  error
}

// PostAsync is Post in a background goroutine, delivering exactly one
// PostResult on the returned buffered channel — the fan-out primitive the
// gateway's hedged requests race on. The goroutine holds no pool locks and
// exits as soon as the exchange resolves (cancel ctx to reclaim it
// promptly); the channel's buffer guarantees it never blocks on a caller
// that stopped listening. The go statement is sanctioned here: PostAsync is
// a Pool method (goroutinehygiene).
func (p *Pool) PostAsync(ctx context.Context, name, path string, body []byte, hdr http.Header) <-chan PostResult {
	ch := make(chan PostResult, 1)
	go func() {
		resp, err := p.Post(ctx, name, path, body, hdr)
		ch <- PostResult{Peer: name, Resp: resp, Err: err}
	}()
	return ch
}

func (p *Pool) postRaw(ctx context.Context, url string, body []byte, hdr http.Header) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	for k, vs := range hdr {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	return p.opts.HTTPClient.Do(req)
}

// drainBody discards and closes a response body so the transport can
// reuse the connection.
func drainBody(resp *http.Response) {
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	_ = resp.Body.Close()
}

// sortMembers orders a member slice by name (insertion sort; rosters
// are a handful of entries).
func sortMembers(ms []Member) {
	for i := 1; i < len(ms); i++ {
		for j := i; j > 0 && ms[j].Name < ms[j-1].Name; j-- {
			ms[j], ms[j-1] = ms[j-1], ms[j]
		}
	}
}
