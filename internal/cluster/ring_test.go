package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

// TestRingDeterministic: a ring is a pure function of the member set —
// input order, duplicates and blanks must not change ownership.
func TestRingDeterministic(t *testing.T) {
	a := NewRing([]string{"a", "b", "c"}, 64)
	b := NewRing([]string{"c", "a", "b", "a", ""}, 64)
	if !reflect.DeepEqual(a.Members(), b.Members()) {
		t.Fatalf("member sets differ: %v vs %v", a.Members(), b.Members())
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("fingerprints differ for the same member set")
	}
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("key-%d", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("key %q owned by %q vs %q", key, a.Owner(key), b.Owner(key))
		}
	}
}

// TestRingMinimalRemap is the consistent-hashing property itself:
// removing one member must only remap the keys it owned — every other
// key keeps its owner. Rejoining restores the original assignment
// exactly (deterministic rebuild on loss/rejoin).
func TestRingMinimalRemap(t *testing.T) {
	full := NewRing([]string{"a", "b", "c"}, 64)
	without := NewRing([]string{"a", "c"}, 64)
	moved := 0
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("key-%d", i)
		was, now := full.Owner(key), without.Owner(key)
		if was == "b" {
			if now == "b" {
				t.Fatalf("key %q still owned by removed member", key)
			}
			moved++
			continue
		}
		if was != now {
			t.Fatalf("key %q moved %q -> %q though its owner never left", key, was, now)
		}
	}
	if moved == 0 {
		t.Fatal("member b owned no keys; ring is degenerate")
	}
	rejoined := NewRing([]string{"b", "c", "a"}, 64)
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("key-%d", i)
		if full.Owner(key) != rejoined.Owner(key) {
			t.Fatalf("rejoin did not restore ownership of %q", key)
		}
	}
}

// TestRingOwnersDistinct: Owners returns distinct members in preference
// order, the owner first, clamped to the member count.
func TestRingOwnersDistinct(t *testing.T) {
	r := NewRing([]string{"a", "b", "c"}, 64)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		owners := r.Owners(key, 5)
		if len(owners) != 3 {
			t.Fatalf("key %q: %d owners, want 3 (clamped)", key, len(owners))
		}
		if owners[0] != r.Owner(key) {
			t.Fatalf("key %q: Owners[0]=%q, Owner=%q", key, owners[0], r.Owner(key))
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("key %q: duplicate owner %q", key, o)
			}
			seen[o] = true
		}
	}
}

// TestRingBalance: with DefaultVNodes, three members each own a
// non-trivial share of keys (no member starves).
func TestRingBalance(t *testing.T) {
	r := NewRing([]string{"a", "b", "c"}, 0) // 0 -> DefaultVNodes
	counts := map[string]int{}
	const n = 3000
	for i := 0; i < n; i++ {
		counts[r.Owner(fmt.Sprintf("key-%d", i))]++
	}
	for m, c := range counts {
		if c < n/10 {
			t.Errorf("member %s owns only %d/%d keys; vnode spread is broken", m, c, n)
		}
	}
	if len(counts) != 3 {
		t.Fatalf("only %d members own keys, want 3", len(counts))
	}
}

// TestRingEmpty: an empty ring owns nothing and panics nowhere.
func TestRingEmpty(t *testing.T) {
	r := NewRing(nil, 64)
	if got := r.Owner("k"); got != "" {
		t.Fatalf("empty ring owner = %q, want \"\"", got)
	}
	if owners := r.Owners("k", 3); owners != nil {
		t.Fatalf("empty ring owners = %v, want nil", owners)
	}
}

// TestRingFingerprintTracksMembership: the fingerprint changes with the
// member set, not with the lookup history.
func TestRingFingerprintTracksMembership(t *testing.T) {
	a := NewRing([]string{"a", "b"}, 64)
	b := NewRing([]string{"a", "b", "c"}, 64)
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("different member sets share a fingerprint")
	}
}
