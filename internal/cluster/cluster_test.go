package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/resilience"
	"repro/internal/service"
	"repro/internal/sim/systems"
	"repro/pkg/blobclient"
)

// testNode is one in-process replica: a Node behind an httptest server
// whose handler can be "killed" (panic http.ErrAbortHandler, which the
// client sees as a transport error — a realistic dead peer) and
// revived without changing its URL, which is what makes kill/rejoin
// testable over httptest at all.
type testNode struct {
	name   string
	node   *Node
	ts     *httptest.Server
	sh     *swapHandler
	killed atomic.Bool
	sweeps atomic.Int64
}

type swapHandler struct{ h atomic.Value }

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.h.Load().(http.Handler).ServeHTTP(w, r)
}

func (tn *testNode) kill()   { tn.killed.Store(true) }
func (tn *testNode) revive() { tn.killed.Store(false) }

// testBreaker trips after one observed failure and recovers fast, so
// tests converge in a few probe rounds.
var testBreaker = resilience.BreakerConfig{
	MinRequests: 1, FailureRatio: 0.5, OpenTimeout: 50 * time.Millisecond,
}

// startCluster boots n replicas wired into one cluster (static roster,
// peer fill enabled, heartbeat loop off — tests drive CheckNow).
func startCluster(t *testing.T, n int) []*testNode {
	t.Helper()
	nodes := make([]*testNode, n)
	members := make([]Member, n)
	for i := range nodes {
		tn := &testNode{name: fmt.Sprintf("rep-%d", i), sh: &swapHandler{}}
		tn.sh.h.Store(http.NotFoundHandler())
		tn.ts = httptest.NewServer(tn.sh)
		t.Cleanup(tn.ts.Close)
		nodes[i] = tn
		members[i] = Member{Name: tn.name, URL: tn.ts.URL}
	}
	for _, tn := range nodes {
		tn := tn
		pool, err := NewPool(Options{
			Self:         tn.name,
			Members:      members,
			DownAfter:    2,
			ProbeTimeout: 2 * time.Second,
			Breaker:      testBreaker,
		})
		if err != nil {
			t.Fatal(err)
		}
		svc := service.New(service.Options{
			Workers:   2,
			CacheSize: 64,
			Sweep:     countingSweep(&tn.sweeps),
			PeerFill:  pool.FillThreshold(),
		})
		tn.node = NewNode(pool, svc)
		handler := tn.node.Handler()
		tn.sh.h.Store(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if tn.killed.Load() {
				panic(http.ErrAbortHandler)
			}
			handler.ServeHTTP(w, r)
		}))
		t.Cleanup(tn.node.Close)
	}
	return nodes
}

func countingSweep(n *atomic.Int64) service.SweepFunc {
	return func(ctx context.Context, sys systems.System, pts []core.ProblemType, precs []core.Precision, cfg core.Config) ([]*core.Series, error) {
		n.Add(1)
		return core.Run(ctx, sys, pts, precs, cfg)
	}
}

func testClient(tn *testNode) *blobclient.Client {
	return blobclient.New(blobclient.Options{
		BaseURL: tn.ts.URL,
		Breaker: resilience.BreakerConfig{MinRequests: 1 << 30},
	})
}

// thresholdReq builds a cheap, real threshold request whose identity
// varies with maxDim.
func thresholdReq(maxDim int) service.ThresholdRequest {
	return service.ThresholdRequest{
		System: "dawn", Kernel: "gemv", Precision: "f64",
		Config: service.SweepConfigRequest{MaxDim: maxDim, Step: 8, Iterations: 2},
	}
}

// reqOwnedBy scans maxDim values until it finds a request whose ring
// owner is the wanted member, plus the request's route key.
func reqOwnedBy(t *testing.T, ring *Ring, owner string) (service.ThresholdRequest, string) {
	t.Helper()
	for maxDim := 16; maxDim <= 4096; maxDim += 8 {
		req := thresholdReq(maxDim)
		key, err := service.ThresholdRouteKey(req, 0)
		if err != nil {
			t.Fatal(err)
		}
		if ring.Owner(key) == owner {
			return req, key
		}
	}
	t.Fatalf("no request found with owner %s", owner)
	return service.ThresholdRequest{}, ""
}

func pickNonOwner(t *testing.T, nodes []*testNode, owner string) *testNode {
	t.Helper()
	for _, tn := range nodes {
		if tn.name != owner {
			return tn
		}
	}
	t.Fatal("no non-owner node")
	return nil
}

// TestPeerFill: a replica that misses its local cache asks the shard's
// ring owner instead of sweeping; exactly one sweep runs cluster-wide,
// the response carries filled_from, and the filled result is cached
// locally for the next hit.
func TestPeerFill(t *testing.T) {
	nodes := startCluster(t, 3)
	ring := nodes[0].node.Pool().Ring()
	req, _ := reqOwnedBy(t, ring, nodes[1].name)
	other := pickNonOwner(t, nodes, nodes[1].name)

	ctx := context.Background()
	resp, err := testClient(other).Threshold(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.FilledFrom != nodes[1].name {
		t.Fatalf("filled_from = %q, want %q", resp.FilledFrom, nodes[1].name)
	}
	if got := nodes[1].sweeps.Load(); got != 1 {
		t.Fatalf("owner ran %d sweeps, want 1", got)
	}
	if got := other.sweeps.Load(); got != 0 {
		t.Fatalf("non-owner ran %d sweeps, want 0 (peer fill)", got)
	}

	// Second identical request at the same replica: a plain local cache
	// hit, no second fill.
	resp2, err := testClient(other).Threshold(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !resp2.Cached {
		t.Fatal("second request was not served from the local cache")
	}
	a, _ := json.Marshal(resp.Thresholds)
	b, _ := json.Marshal(resp2.Thresholds)
	if string(a) != string(b) {
		t.Fatalf("filled and cached verdicts diverge:\n%s\n%s", a, b)
	}
}

// TestPeerFillLoopGuard: a request that is itself a peer fill must be
// answered from local state only — the receiving replica sweeps
// locally rather than fanning out another fill.
func TestPeerFillLoopGuard(t *testing.T) {
	nodes := startCluster(t, 3)
	ring := nodes[0].node.Pool().Ring()
	// Owned by rep-1, but sent (marked as a fill) to a different node:
	// without the guard the receiver would fill from rep-1.
	req, _ := reqOwnedBy(t, ring, nodes[1].name)
	other := pickNonOwner(t, nodes, nodes[1].name)

	resp, err := testClient(other).ThresholdPeer(context.Background(), req, "test-origin")
	if err != nil {
		t.Fatal(err)
	}
	if resp.FilledFrom != "" {
		t.Fatalf("fill request was itself filled from %q; loop guard broken", resp.FilledFrom)
	}
	if got := other.sweeps.Load(); got != 1 {
		t.Fatalf("receiver ran %d sweeps, want 1 (local compute)", got)
	}
	if got := nodes[1].sweeps.Load(); got != 0 {
		t.Fatalf("ring owner ran %d sweeps, want 0", got)
	}
}

// TestPeerFillFallback: with the shard owner dead, the requesting
// replica falls back to a local sweep and still answers 200 — a fill
// failure degrades latency, never availability or the verdict.
func TestPeerFillFallback(t *testing.T) {
	nodes := startCluster(t, 3)
	ring := nodes[0].node.Pool().Ring()
	req, _ := reqOwnedBy(t, ring, nodes[1].name)
	other := pickNonOwner(t, nodes, nodes[1].name)

	// Reference verdict before the kill.
	ref, err := testClient(nodes[1]).Threshold(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}

	nodes[1].kill()
	resp, err := testClient(other).Threshold(context.Background(), req)
	if err != nil {
		t.Fatalf("request failed with owner dead: %v", err)
	}
	if resp.FilledFrom != "" {
		t.Fatalf("filled_from = %q with the owner dead", resp.FilledFrom)
	}
	if got := other.sweeps.Load(); got != 1 {
		t.Fatalf("fallback ran %d local sweeps, want 1", got)
	}
	a, _ := json.Marshal(ref.Thresholds)
	b, _ := json.Marshal(resp.Thresholds)
	if string(a) != string(b) {
		t.Fatalf("fallback verdict diverges from owner verdict:\n%s\n%s", a, b)
	}
}

// TestHealthKillRejoin: probes take a dead peer out of the ring after
// DownAfter misses (its breaker opens on the first), and one successful
// probe after revival puts it back — deterministic ring rebuild on
// member loss and rejoin.
func TestHealthKillRejoin(t *testing.T) {
	nodes := startCluster(t, 3)
	pool := nodes[0].node.Pool()
	ctx := context.Background()
	before := pool.Ring().Fingerprint()

	nodes[1].kill()
	pool.CheckNow(ctx)
	if !pool.Healthy("rep-1") {
		t.Fatal("one miss already marked rep-1 down; DownAfter=2 ignored")
	}
	pool.CheckNow(ctx)
	if pool.Healthy("rep-1") {
		t.Fatal("rep-1 still healthy after DownAfter misses")
	}
	if got := pool.Ring().Members(); len(got) != 2 {
		t.Fatalf("ring members = %v, want 2", got)
	}
	if br := pool.Breaker("rep-1"); br.State() != resilience.Open {
		t.Fatalf("dead peer's breaker is %v, want open", br.State())
	}

	nodes[1].revive()
	time.Sleep(testBreaker.OpenTimeout + 10*time.Millisecond) // past the probe window
	pool.CheckNow(ctx)
	if !pool.Healthy("rep-1") {
		t.Fatal("rep-1 not healthy after revival probe")
	}
	if after := pool.Ring().Fingerprint(); after != before {
		t.Fatalf("rejoin ring %q differs from original %q; rebuild not deterministic", after, before)
	}
}

// TestApplyMembership: hello/leave/heartbeat messages fold into the
// table — leave removes a member from the ring immediately, hello
// restores it, and an unknown member can be introduced by hello.
func TestApplyMembership(t *testing.T) {
	nodes := startCluster(t, 3)
	pool := nodes[0].node.Pool()

	rep1 := Member{Name: "rep-1", URL: nodes[1].ts.URL}
	if err := pool.Apply(Message{Type: TypeLeave, From: rep1}); err != nil {
		t.Fatal(err)
	}
	if pool.Healthy("rep-1") {
		t.Fatal("rep-1 still in the ring after leave")
	}
	if err := pool.Apply(Message{Type: TypeHello, From: rep1}); err != nil {
		t.Fatal(err)
	}
	if !pool.Healthy("rep-1") {
		t.Fatal("rep-1 not back after hello")
	}

	extra := Member{Name: "rep-9", URL: nodes[1].ts.URL}
	if err := pool.Apply(Message{Type: TypeHello, From: extra}); err != nil {
		t.Fatal(err)
	}
	if !pool.Healthy("rep-9") {
		t.Fatal("hello did not introduce rep-9")
	}
	if err := pool.Apply(Message{Type: "bogus", From: rep1}); err == nil {
		t.Fatal("Apply accepted an invalid message")
	}
}

// TestDrainOrder pins the drain sequence: after Drain, peers have
// dropped the member from their rings (ring-leave, via the leave
// broadcast) and its /readyz answers 503 not_ready — while /healthz
// stays green and in-flight traffic still completes. Close then stamps
// blob_drain_seconds.
func TestDrainOrder(t *testing.T) {
	nodes := startCluster(t, 3)
	draining := nodes[0]
	ctx := context.Background()

	// An in-flight-style request issued after BeginDrain must still be
	// served: drain means "stop routing to me", not "refuse".
	draining.node.Drain(ctx)

	for _, other := range nodes[1:] {
		if other.node.Pool().Healthy("rep-0") {
			t.Fatalf("%s still routes to rep-0 after its leave broadcast", other.name)
		}
	}
	if _, err := testClient(draining).Ready(ctx); err == nil {
		t.Fatal("/readyz still 200 during drain")
	} else if !strings.Contains(err.Error(), "not_ready") {
		t.Fatalf("/readyz error %v, want code not_ready", err)
	}
	if _, err := testClient(draining).Health(ctx); err != nil {
		t.Fatalf("/healthz went unhealthy during drain (liveness must not follow readiness): %v", err)
	}
	if _, err := testClient(draining).Threshold(ctx, thresholdReq(32)); err != nil {
		t.Fatalf("request during drain failed: %v", err)
	}

	svc := draining.node.Service()
	svc.Close()
	if got := svc.Metrics().DrainSeconds(); got <= 0 {
		t.Fatalf("blob_drain_seconds = %g after drain+close, want > 0", got)
	}
	mets := httptest.NewRecorder()
	svc.Handler().ServeHTTP(mets, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if !strings.Contains(mets.Body.String(), "blob_drain_seconds") {
		t.Fatal("/metrics does not render blob_drain_seconds")
	}
}

// TestFillBreakerRefusal: once a dead owner's breaker is open, fill
// attempts are refused without touching the network and the caller
// falls back locally; the breaker's half-open probe window later lets
// fills recover.
func TestFillBreakerRefusal(t *testing.T) {
	nodes := startCluster(t, 3)
	other := pickNonOwner(t, nodes, nodes[1].name)
	pool := other.node.Pool()
	req, key := reqOwnedBy(t, pool.Ring(), nodes[1].name)

	nodes[1].kill()
	// Trip rep-1's breaker on this pool via one failed fill attempt
	// (MinRequests 1).
	fill := pool.FillThreshold()
	if _, err := fill(context.Background(), req, key); err == nil {
		t.Fatal("fill against a dead owner succeeded")
	}
	if st := pool.Breaker(nodes[1].name).State(); st != resilience.Open {
		t.Fatalf("breaker %v after failed fill, want open", st)
	}
	_, err := fill(context.Background(), req, key)
	if err == nil || !strings.Contains(err.Error(), "refused") {
		t.Fatalf("open breaker did not refuse the fill fast: %v", err)
	}

	nodes[1].revive()
	time.Sleep(testBreaker.OpenTimeout + 10*time.Millisecond)
	resp, err := fill(context.Background(), req, key)
	if err != nil || resp == nil {
		t.Fatalf("fill did not recover after the owner revived: %v", err)
	}
}
