package cluster

import (
	"encoding/json"
	"testing"

	"repro/internal/service"
)

// FuzzClusterWire hammers the two untrusted inputs the cluster reads
// off the network: the membership message parser (POST
// /cluster/v1/hello bodies) and the threshold route key the gateway
// derives from client request bodies. Invariants: neither ever panics;
// a message ParseMessage accepts survives a marshal/re-parse round trip
// unchanged (so a relayed message means the same thing everywhere); and
// the route key is deterministic — the same bytes always route to the
// same shard, the property the whole ring stands on.
func FuzzClusterWire(f *testing.F) {
	f.Add([]byte(`{"type":"hello","from":{"name":"rep-0","url":"http://10.0.0.1:8080"}}`))
	f.Add([]byte(`{"type":"leave","from":{"name":"rep-1","url":"https://replica.example"}}`))
	f.Add([]byte(`{"type":"heartbeat","from":{"name":"a","url":"http://x"},"ring":"abcd1234deadbeef"}`))
	f.Add([]byte(`{"system":"dawn","kernel":"gemv","precision":"f64"}`))
	f.Add([]byte(`{"system":"lumi","kernel":"gemm","precision":"f32","config":{"max_dim":256,"step":16}}`))
	f.Add([]byte(`{"type":"hello","from":{"name":"-bad","url":"ftp://x"}}`))
	f.Add([]byte(`not json at all`))
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := ParseMessage(data)
		if err == nil {
			re, merr := json.Marshal(msg)
			if merr != nil {
				t.Fatalf("accepted message does not re-marshal: %v", merr)
			}
			again, perr := ParseMessage(re)
			if perr != nil {
				t.Fatalf("re-marshaled message rejected: %v\n%s", perr, re)
			}
			if again != msg {
				t.Fatalf("message changed across round trip: %+v vs %+v", again, msg)
			}
		}

		// The same bytes, read as a threshold request, must produce a
		// deterministic route key (or a deterministic rejection).
		var req service.ThresholdRequest
		if jerr := json.Unmarshal(data, &req); jerr != nil {
			return
		}
		k1, err1 := service.ThresholdRouteKey(req, 0)
		k2, err2 := service.ThresholdRouteKey(req, 0)
		if (err1 == nil) != (err2 == nil) || k1 != k2 {
			t.Fatalf("route key not deterministic: (%q, %v) then (%q, %v)", k1, err1, k2, err2)
		}
	})
}
