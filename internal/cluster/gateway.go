package cluster

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/service"
)

// GatewayOptions configures a Gateway.
type GatewayOptions struct {
	// MaxSweepDim must match the replicas' service MaxSweepDim option so
	// the gateway's route key and the replicas' cache key agree (<= 0
	// takes the service default, 4096).
	MaxSweepDim int
	// Replication is how many ring owners a request is tried against
	// before answering 503 no_peer (default 3; clamped to the member
	// count). Only transport failures and open breakers advance to the
	// next owner — an HTTP response, any status, is relayed as-is,
	// because a shed or an error is a valid answer, not a routing
	// failure.
	Replication int
	// Logger receives routing logs; nil discards them.
	Logger *slog.Logger
	// Hedge enables hedged requests on the idempotent routes
	// (/v1/threshold, /v1/advise, /v0/advise): when the primary owner has
	// not answered within the hedge delay, a second copy of the request
	// races to the next ring owner — first success wins, the loser is
	// cancelled. /v1/dispatch is never hedged: the dispatcher's hysteresis
	// state makes a duplicated batch observable, so it is not idempotent.
	Hedge bool
	// HedgeAfter fixes the hedge delay. 0 (the default) derives it per
	// request from the p99 of recent successful proxy latencies, clamped
	// to [HedgeMin, HedgeMax] — "hedge only when this request is already
	// slower than almost everything we serve".
	HedgeAfter time.Duration
	// HedgeMin / HedgeMax clamp the adaptive hedge delay (defaults 2ms /
	// 500ms). HedgeMax also serves as the delay while the latency window
	// is still cold, so a freshly started gateway hedges conservatively.
	HedgeMin time.Duration
	HedgeMax time.Duration
}

// Gateway routes advisor requests to the consistent-hash owner of each
// request's shard, with breaker-guarded failover along the ring's
// preference order. It proxies bodies byte-transparently in both
// directions: the gateway can change where a verdict is computed,
// never what it says.
//
// Routing keys per endpoint:
//
//   - /v1/threshold: service.ThresholdRouteKey — the same canonical
//     identity the replica caches the result under, so one shard's
//     requests concentrate on the replica whose LRU holds them;
//   - /v1/dispatch: the system name, concentrating each system's
//     dispatcher shape-cache on one replica;
//   - /v1/advise (and the deprecated /v0/advise): a digest of the
//     request body — advise is stateless, so any replica answers
//     identically and the digest just spreads load deterministically.
type Gateway struct {
	pool  *Pool
	opts  GatewayOptions
	log   *slog.Logger
	start time.Time

	metrics gatewayMetrics
	lat     latencyRing // recent proxy latencies, feeding the hedge delay
}

// gatewayMetrics is the gateway's own observability surface (the
// service's Metrics registry is per-replica; the gateway only routes).
type gatewayMetrics struct {
	mu     sync.Mutex
	routed map[string]*service.Counter // peer -> relayed responses

	reroutes     service.Counter // transport failures that advanced to the next owner
	breakerSkips service.Counter // owners skipped because their breaker refused
	noPeer       service.Counter // requests that exhausted every owner
	hedges       service.Counter // hedge requests fired (slow primary)
	hedgeWins    service.Counter // relayed responses that came from a hedge
	deadlineGone service.Counter // requests 504ed at the gateway: budget spent pre-forward
}

func (g *gatewayMetrics) routedCounter(peer string) *service.Counter {
	g.mu.Lock()
	defer g.mu.Unlock()
	c, ok := g.routed[peer]
	if !ok {
		c = &service.Counter{}
		g.routed[peer] = c
	}
	return c
}

// NewGateway builds a Gateway over a (typically self-less) pool.
func NewGateway(pool *Pool, opts GatewayOptions) *Gateway {
	if opts.MaxSweepDim <= 0 {
		opts.MaxSweepDim = 4096
	}
	if opts.Replication <= 0 {
		opts.Replication = 3
	}
	if opts.Logger == nil {
		opts.Logger = slog.New(slog.NewJSONHandler(io.Discard, nil))
	}
	if opts.HedgeMin <= 0 {
		opts.HedgeMin = 2 * time.Millisecond
	}
	if opts.HedgeMax <= 0 {
		opts.HedgeMax = 500 * time.Millisecond
	}
	g := &Gateway{pool: pool, opts: opts, log: opts.Logger, start: time.Now()}
	g.metrics.routed = map[string]*service.Counter{}
	return g
}

// Handler returns the gateway's routed HTTP handler.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/v1/threshold", g.post(g.routeThreshold))
	mux.Handle("/v1/dispatch", g.post(g.routeDispatch))
	mux.Handle("/v1/advise", g.post(g.routeByDigest))
	mux.Handle("/v0/advise", g.post(g.routeByDigest))
	mux.Handle("/cluster/v1/hello", g.pool.HelloHandler())
	mux.HandleFunc("/healthz", g.handleHealthz)
	mux.HandleFunc("/readyz", g.handleReadyz)
	mux.HandleFunc("/metrics", g.handleMetrics)
	return mux
}

func (g *Gateway) post(h func(http.ResponseWriter, *http.Request, []byte, time.Time)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// The deadline budget starts burning the moment the request
		// arrives, body read included.
		arrived := time.Now()
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			writeWireError(w, http.StatusMethodNotAllowed, "method_not_allowed", "use POST")
			return
		}
		body, err := readLimit(r, 64<<20)
		if err != nil {
			writeWireError(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("reading body: %v", err))
			return
		}
		h(w, r, body, arrived)
	})
}

// routeThreshold routes by the canonical threshold identity. A request
// the replicas would reject is rejected here with the same contract —
// cheaper than a proxy hop, and it keeps garbage off the ring.
func (g *Gateway) routeThreshold(w http.ResponseWriter, r *http.Request, body []byte, arrived time.Time) {
	var req service.ThresholdRequest
	if err := strictUnmarshal(body, &req); err != nil {
		writeWireError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	key, err := service.ThresholdRouteKey(req, g.opts.MaxSweepDim)
	if err != nil {
		writeWireError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	g.route(w, r, key, body, true, arrived)
}

// routeDispatch routes by system name: each system's dispatcher
// shape-cache warms on one replica instead of diluting across all.
// Dispatch is never hedged (hedgeable=false): the dispatcher's
// hysteresis state makes a duplicated batch observable.
func (g *Gateway) routeDispatch(w http.ResponseWriter, r *http.Request, body []byte, arrived time.Time) {
	var req struct {
		System string `json:"system"`
	}
	// Lenient decode: only the routing field matters here; the replica
	// strict-decodes the full batch.
	if err := json.Unmarshal(body, &req); err != nil || req.System == "" {
		writeWireError(w, http.StatusBadRequest, "bad_request", "invalid JSON body: want a dispatch batch with a system field")
		return
	}
	g.route(w, r, "dispatch|"+req.System, body, false, arrived)
}

// routeByDigest routes stateless endpoints by a digest of the body:
// deterministic spread, identical answers everywhere.
func (g *Gateway) routeByDigest(w http.ResponseWriter, r *http.Request, body []byte, arrived time.Time) {
	sum := sha256.Sum256(body)
	g.route(w, r, "advise|"+hex.EncodeToString(sum[:16]), body, true, arrived)
}

// route proxies body to the ring owners of key in preference order.
// Failover advances only on transport errors (peer unreachable) and
// open breakers; any HTTP response — including a shed — is the
// cluster's answer and is relayed verbatim. The client's X-Deadline-Ms
// budget is decremented by gateway-side elapsed time before each
// forward; a spent budget answers 504 without burning a replica slot.
// Hedgeable routes may additionally race a delayed second attempt
// against a slow primary (see GatewayOptions.Hedge and routeHedged).
func (g *Gateway) route(w http.ResponseWriter, r *http.Request, key string, body []byte, hedgeable bool, arrived time.Time) {
	owners := g.pool.Owners(key, g.opts.Replication)
	budget := clientBudget(r)
	if g.opts.Hedge && hedgeable && len(owners) > 1 {
		g.routeHedged(w, r, owners, body, budget, arrived)
		return
	}
	var lastErr error
	for i, name := range owners {
		br := g.pool.Breaker(name)
		if br == nil {
			continue // self or vanished member
		}
		if err := br.Allow(); err != nil {
			g.metrics.breakerSkips.Inc()
			lastErr = fmt.Errorf("peer %s: %w", name, err)
			continue
		}
		hdr, ok := g.hopHeaders(r, budget, arrived)
		if !ok {
			g.rejectDeadline(w, budget)
			return
		}
		resp, err := g.pool.Post(r.Context(), name, r.URL.Path, body, hdr)
		if err != nil {
			if r.Context().Err() != nil {
				// The client hung up mid-proxy; that proves nothing about
				// the peer (mirrors blobclient's breaker discipline), and
				// nobody is reading a reroute's answer.
				br.Record(nil)
				g.log.Info("gateway: request abandoned by client", "peer", name, "path", r.URL.Path)
				return
			}
			br.Record(err)
			g.metrics.reroutes.Inc()
			lastErr = fmt.Errorf("peer %s: %w", name, err)
			g.log.Warn("gateway: peer unreachable, rerouting", "peer", name, "path", r.URL.Path, "err", err)
			continue
		}
		// Any HTTP response proves the peer is alive.
		br.Record(nil)
		if i > 0 {
			g.log.Info("gateway: served by failover owner", "peer", name, "rank", i)
		}
		g.lat.observe(time.Since(arrived))
		g.relay(w, resp, name)
		g.metrics.routedCounter(name).Inc()
		return
	}
	g.metrics.noPeer.Inc()
	msg := "no healthy replica owns this shard"
	if lastErr != nil {
		msg = fmt.Sprintf("%s (last error: %v)", msg, lastErr)
	}
	rejectWire(w, http.StatusServiceUnavailable, "no_peer", msg, 1)
}

// relay copies a replica's response to the client byte-for-byte,
// tagging the serving peer in X-Blob-Peer.
func (g *Gateway) relay(w http.ResponseWriter, resp *http.Response, peer string) {
	defer resp.Body.Close()
	for _, h := range []string{"Content-Type", "Retry-After", "Deprecation", "Link", "Allow"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set("X-Blob-Peer", peer)
	w.WriteHeader(resp.StatusCode)
	if _, err := io.Copy(w, resp.Body); err != nil {
		g.log.Debug("gateway: relay interrupted", "peer", peer, "err", err)
	}
}

// forwardHeaders picks the request headers that must survive the hop:
// the client identity (fair-share admission), the deadline budget, and
// the peer-fill loop guard.
func forwardHeaders(r *http.Request) http.Header {
	out := http.Header{}
	for _, h := range []string{"X-API-Key", deadlineHeader, service.PeerFillHeader} {
		if v := r.Header.Get(h); v != "" {
			out.Set(h, v)
		}
	}
	return out
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeWireEnvelope(w, http.StatusOK, service.SchemaHealth, service.HealthBody{
		Status:        "ok",
		UptimeSeconds: time.Since(g.start).Seconds(),
	})
}

// handleReadyz: the gateway is ready while at least one replica is in
// the ring — with zero owners every route would answer 503 no_peer.
func (g *Gateway) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if len(g.pool.Ring().Members()) == 0 {
		rejectWire(w, http.StatusServiceUnavailable, "not_ready", "no healthy replicas in the ring", 1)
		return
	}
	writeWireEnvelope(w, http.StatusOK, service.SchemaReady, service.ReadyBody{
		Status:        "ready",
		WorkersArmed:  true, // the gateway has no pool to arm
		UptimeSeconds: time.Since(g.start).Seconds(),
	})
}

// handleMetrics renders the gateway's Prometheus text: per-peer routed
// counts and up-gauges, reroute/skip/no-peer counters, and the routing
// latency histogram the route-overhead bench asserts on.
func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b strings.Builder

	g.metrics.mu.Lock()
	peers := make([]string, 0, len(g.metrics.routed))
	for name := range g.metrics.routed {
		peers = append(peers, name)
	}
	g.metrics.mu.Unlock()
	sort.Strings(peers)

	fmt.Fprintf(&b, "# HELP blob_gateway_routed_total Responses relayed, by serving peer.\n# TYPE blob_gateway_routed_total counter\n")
	for _, name := range peers {
		fmt.Fprintf(&b, "blob_gateway_routed_total{peer=%q} %d\n", name, g.metrics.routedCounter(name).Value())
	}
	fmt.Fprintf(&b, "# HELP blob_gateway_reroutes_total Transport failures that advanced to the next ring owner.\n# TYPE blob_gateway_reroutes_total counter\n")
	fmt.Fprintf(&b, "blob_gateway_reroutes_total %d\n", g.metrics.reroutes.Value())
	fmt.Fprintf(&b, "# HELP blob_gateway_breaker_skips_total Owners skipped because their circuit breaker refused.\n# TYPE blob_gateway_breaker_skips_total counter\n")
	fmt.Fprintf(&b, "blob_gateway_breaker_skips_total %d\n", g.metrics.breakerSkips.Value())
	fmt.Fprintf(&b, "# HELP blob_gateway_no_peer_total Requests that exhausted every ring owner.\n# TYPE blob_gateway_no_peer_total counter\n")
	fmt.Fprintf(&b, "blob_gateway_no_peer_total %d\n", g.metrics.noPeer.Value())
	fmt.Fprintf(&b, "# HELP blob_gateway_hedges_total Hedge requests fired against a slow primary owner.\n# TYPE blob_gateway_hedges_total counter\n")
	fmt.Fprintf(&b, "blob_gateway_hedges_total %d\n", g.metrics.hedges.Value())
	fmt.Fprintf(&b, "# HELP blob_gateway_hedge_wins_total Relayed responses that came from a hedge, not the primary.\n# TYPE blob_gateway_hedge_wins_total counter\n")
	fmt.Fprintf(&b, "blob_gateway_hedge_wins_total %d\n", g.metrics.hedgeWins.Value())
	fmt.Fprintf(&b, "# HELP blob_gateway_deadline_exhausted_total Requests answered 504 because the deadline budget was spent before forwarding.\n# TYPE blob_gateway_deadline_exhausted_total counter\n")
	fmt.Fprintf(&b, "blob_gateway_deadline_exhausted_total %d\n", g.metrics.deadlineGone.Value())

	fmt.Fprintf(&b, "# HELP blob_gateway_peer_up Ring membership, by peer (1 = in the ring).\n# TYPE blob_gateway_peer_up gauge\n")
	for _, m := range g.pool.Members() {
		up := 0
		if g.pool.Healthy(m.Name) {
			up = 1
		}
		fmt.Fprintf(&b, "blob_gateway_peer_up{peer=%q} %d\n", m.Name, up)
	}

	_, _ = io.WriteString(w, b.String())
}

// strictUnmarshal mirrors the service's strict request decoding:
// unknown fields and trailing bytes are the client's error.
func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("invalid JSON body: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("invalid JSON body: trailing data")
	}
	return nil
}

// writeWireEnvelope writes a success envelope (the gateway's own
// non-proxied endpoints speak the same v1 contract as the replicas).
func writeWireEnvelope(w http.ResponseWriter, status int, schema string, data any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(service.Envelope{Schema: schema, Data: data})
}

// rejectWire writes the uniform rejection contract (Retry-After header
// mirrored in error.retry_after_s).
func rejectWire(w http.ResponseWriter, status int, code, msg string, retryAfterS int) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Retry-After", fmt.Sprint(retryAfterS))
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(service.Envelope{
		Schema: service.SchemaError,
		Error:  &service.APIError{Code: code, Message: msg, RetryAfterS: retryAfterS},
	})
}
