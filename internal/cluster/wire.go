package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/url"
	"strings"
)

// Membership wire messages ride POST /cluster/v1/hello between
// replicas. The vocabulary is deliberately tiny — three message types
// over a static member list — because the ring is a pure function of
// the healthy member set: there is no leader, no epoch, nothing to
// elect. A message only ever changes one member's up/down bit (or
// introduces a member), and every replica folds messages with Apply.

// Message types.
const (
	// TypeHello announces a member that is up (sent on start and on
	// rejoin after a drain or crash).
	TypeHello = "hello"
	// TypeLeave announces a graceful departure: the sender is removing
	// itself from the ring before it stops accepting connections.
	TypeLeave = "leave"
	// TypeHeartbeat is a periodic liveness claim carrying the sender's
	// ring fingerprint, so diverging membership views surface in logs.
	TypeHeartbeat = "heartbeat"
)

// ErrInvalidMember reports a member that violates the wire constraints
// (bad name, bad URL, duplicate roster entry).
var ErrInvalidMember = errors.New("cluster: invalid member")

// ErrInvalidMessage reports a membership message that violates the wire
// contract.
var ErrInvalidMessage = errors.New("cluster: invalid message")

// Member identifies one replica: a stable name (the ring identity) and
// the base URL peers reach it at.
type Member struct {
	Name string `json:"name"`
	URL  string `json:"url"`
}

// Validate checks the member against the wire constraints.
func (m Member) Validate() error {
	if !ValidMemberName(m.Name) {
		return fmt.Errorf("%w: name %q (want [a-z0-9][a-z0-9-]{0,62})", ErrInvalidMember, m.Name)
	}
	u, err := url.Parse(m.URL)
	if err != nil {
		return fmt.Errorf("%w: %s: bad url: %v", ErrInvalidMember, m.Name, err)
	}
	if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return fmt.Errorf("%w: %s: url %q must be absolute http(s)", ErrInvalidMember, m.Name, m.URL)
	}
	return nil
}

// ValidMemberName reports whether s is a legal member name: lowercase
// alphanumerics and dashes, starting with an alphanumeric, at most 63
// bytes (the DNS-label convention, so names can double as hostnames).
func ValidMemberName(s string) bool {
	if len(s) == 0 || len(s) > 63 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
		case c == '-' && i > 0:
		default:
			return false
		}
	}
	return true
}

// ParseMemberList parses the command-line roster syntax shared by
// blob-served and blob-gateway: comma-separated "name=url" pairs, e.g.
// "rep-0=http://10.0.0.1:8080,rep-1=http://10.0.0.2:8080". Every
// member is validated; duplicate names are rejected.
func ParseMemberList(s string) ([]Member, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	seen := map[string]bool{}
	var out []Member
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, u, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("%w: %q: want name=url", ErrInvalidMember, part)
		}
		m := Member{Name: strings.TrimSpace(name), URL: strings.TrimSpace(u)}
		if err := m.Validate(); err != nil {
			return nil, err
		}
		if seen[m.Name] {
			return nil, fmt.Errorf("%w: duplicate name %q", ErrInvalidMember, m.Name)
		}
		seen[m.Name] = true
		out = append(out, m)
	}
	return out, nil
}

// Message is one membership event on the wire.
type Message struct {
	// Type is one of TypeHello, TypeLeave, TypeHeartbeat.
	Type string `json:"type"`
	// From is the member the event is about (always the sender).
	From Member `json:"from"`
	// Ring is the sender's ring fingerprint (heartbeats only; informational).
	Ring string `json:"ring,omitempty"`
}

// Validate checks the message against the wire contract.
func (m Message) Validate() error {
	switch m.Type {
	case TypeHello, TypeLeave, TypeHeartbeat:
	default:
		return fmt.Errorf("%w: unknown type %q", ErrInvalidMessage, m.Type)
	}
	if err := m.From.Validate(); err != nil {
		return err
	}
	if len(m.Ring) > 64 {
		return fmt.Errorf("%w: ring fingerprint too long (%d bytes)", ErrInvalidMessage, len(m.Ring))
	}
	return nil
}

// ParseMessage decodes and validates one membership message. The
// decoder is strict — unknown fields and trailing bytes are rejected —
// because this is an untrusted network input (and the fuzz target in
// verify's fuzz stage hammers exactly this function).
func ParseMessage(data []byte) (Message, error) {
	var msg Message
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&msg); err != nil {
		return Message{}, fmt.Errorf("%w: %v", ErrInvalidMessage, err)
	}
	if dec.More() {
		return Message{}, fmt.Errorf("%w: trailing data", ErrInvalidMessage)
	}
	if err := msg.Validate(); err != nil {
		return Message{}, err
	}
	return msg, nil
}
