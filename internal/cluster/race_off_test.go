//go:build !race

package cluster

// raceEnabled reports whether the race detector instruments this test
// binary; see race_on_test.go.
const raceEnabled = false
