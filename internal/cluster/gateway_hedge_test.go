package cluster

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/resilience"
	"repro/internal/service"
)

// slowNode wraps a test node's handler with a fixed delay, simulating a
// replica that is alive but slow (GC pause, overloaded box, bad NIC).
// Peer-fill hops are exempt so the hedge target can still fill the
// shard from the slow owner quickly — the test models a slow public
// path, not a slow replica core.
func slowNode(tn *testNode, d time.Duration) {
	inner := tn.sh.h.Load().(http.HandlerFunc)
	tn.sh.h.Store(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(service.PeerFillHeader) == "" {
			time.Sleep(d)
		}
		inner.ServeHTTP(w, r)
	}))
}

// TestGatewayRerouteMidDrain: a draining ring owner answers 503
// not_ready to health probes; after DownAfter probes it leaves the
// gateway's ring and its shards land on the next owner — without the
// drained peer's breaker tripping, because a drain is an orderly
// goodbye, not an outage. When the drain is a rolling restart, a tripped
// breaker would make the revived replica eat an OpenTimeout of skips it
// never earned.
func TestGatewayRerouteMidDrain(t *testing.T) {
	nodes := startCluster(t, 3)
	g, ts := startGateway(t, nodes)
	ring := nodes[0].node.Pool().Ring()
	req, key := reqOwnedBy(t, ring, nodes[1].name)
	owners := ring.Owners(key, 3)
	body := mustMarshal(t, req)

	ctx := context.Background()
	nodes[1].node.Drain(ctx)
	// Two probe rounds: DownAfter consecutive not_ready answers take the
	// draining owner out of the gateway's ring.
	g.pool.CheckNow(ctx)
	g.pool.CheckNow(ctx)
	if g.pool.Healthy(nodes[1].name) {
		t.Fatal("draining owner still healthy after two probe rounds")
	}

	resp := postJSON(t, ts.URL+"/v1/threshold", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mid-drain request: status %d", resp.StatusCode)
	}
	if peer := resp.Header.Get("X-Blob-Peer"); peer != owners[1] {
		t.Fatalf("served by %q, want next owner %q", peer, owners[1])
	}
	resp.Body.Close()
	if st := g.pool.Breaker(nodes[1].name).State(); st != resilience.Closed {
		t.Fatalf("draining peer's breaker is %v, want closed (drain is not an outage)", st)
	}
}

// TestGatewayHedgeWin: with hedging armed and the primary owner slow, a
// hedge fires to the next ring owner and its answer is relayed first.
// The slow primary is cancelled — and, being alive, its breaker stays
// closed: losing a race is not a transport failure.
func TestGatewayHedgeWin(t *testing.T) {
	nodes := startCluster(t, 3)
	g, ts := startGatewayOpts(t, nodes, GatewayOptions{Hedge: true, HedgeAfter: 20 * time.Millisecond})
	ring := nodes[0].node.Pool().Ring()
	req, key := reqOwnedBy(t, ring, nodes[1].name)
	owners := ring.Owners(key, 3)
	body := mustMarshal(t, req)

	slowNode(nodes[1], 400*time.Millisecond)
	began := time.Now()
	resp := postJSON(t, ts.URL+"/v1/threshold", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hedged request: status %d", resp.StatusCode)
	}
	if peer := resp.Header.Get("X-Blob-Peer"); peer != owners[1] {
		t.Fatalf("served by %q, want hedge target %q", peer, owners[1])
	}
	resp.Body.Close()
	if took := time.Since(began); took >= 400*time.Millisecond {
		t.Fatalf("hedged request took %v — it waited out the slow primary", took)
	}

	metrics := getBody(t, ts.URL+"/metrics")
	for _, want := range []string{"blob_gateway_hedges_total 1", "blob_gateway_hedge_wins_total 1"} {
		if !strings.Contains(metrics, want) {
			t.Errorf("gateway metrics missing %q:\n%s", want, metrics)
		}
	}
	// The cancelled loser proves nothing about peer health.
	if st := g.pool.Breaker(nodes[1].name).State(); st != resilience.Closed {
		t.Fatalf("losing primary's breaker is %v, want closed", st)
	}
	// Dispatch is not idempotent and must never hedge, slow owner or not.
	dispatch := []byte(`{"system":"dawn","calls":[{"kernel":"gemm","m":8,"n":8,"k":8,"precision":"f64"}]}`)
	resp = postJSON(t, ts.URL+"/v1/dispatch", dispatch)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	metrics = getBody(t, ts.URL+"/metrics")
	if !strings.Contains(metrics, "blob_gateway_hedges_total 1") {
		t.Errorf("dispatch route hedged:\n%s", metrics)
	}
}

// TestGatewayDeadlineDecrement: the gateway forwards the remaining
// deadline budget, not the client's original number — the replica's
// view of "time left" must account for time already burned upstream.
func TestGatewayDeadlineDecrement(t *testing.T) {
	nodes := startCluster(t, 1)
	_, ts := startGateway(t, nodes)

	var seen syncString
	inner := nodes[0].sh.h.Load().(http.HandlerFunc)
	nodes[0].sh.h.Store(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/threshold" {
			seen.Store(r.Header.Get("X-Deadline-Ms"))
		}
		inner.ServeHTTP(w, r)
	}))

	body := mustMarshal(t, thresholdReq(32))
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/threshold", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Deadline-Ms", "5000")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	got, err := strconv.Atoi(seen.Load())
	if err != nil {
		t.Fatalf("replica saw X-Deadline-Ms %q, want an integer", seen.Load())
	}
	if got >= 5000 || got <= 4000 {
		t.Fatalf("replica saw budget %d ms, want decremented from 5000 but not gutted", got)
	}

	// A malformed header is the client's error: forwarded verbatim so the
	// replica answers its canonical 400, never silently repaired.
	req, _ = http.NewRequest(http.MethodPost, ts.URL+"/v1/threshold", strings.NewReader(string(body)))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Deadline-Ms", "soon")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed deadline: status %d, want 400 from the replica", resp.StatusCode)
	}
	if seen.Load() != "soon" {
		t.Fatalf("replica saw %q, want the malformed header forwarded verbatim", seen.Load())
	}
}

// TestGatewayDeadlineExhausted: a budget the gateway has already spent
// answers 504 deadline_exceeded locally — forwarding would burn a
// replica slot on an answer nobody can use.
func TestGatewayDeadlineExhausted(t *testing.T) {
	nodes := startCluster(t, 1)
	_, ts := startGateway(t, nodes)
	before := nodes[0].sweeps.Load()

	body := mustMarshal(t, thresholdReq(40))
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/threshold", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Deadline-Ms", "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	var env struct {
		Schema string            `json:"schema"`
		Error  *service.APIError `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.Error == nil || env.Error.Code != "deadline_exceeded" {
		t.Fatalf("envelope %+v, want code deadline_exceeded", env)
	}
	if got := nodes[0].sweeps.Load(); got != before {
		t.Fatalf("exhausted-budget request still reached the replica backend (%d sweeps)", got-before)
	}
	metrics := getBody(t, ts.URL+"/metrics")
	if !strings.Contains(metrics, "blob_gateway_deadline_exhausted_total 1") {
		t.Errorf("metrics missing deadline counter:\n%s", metrics)
	}
}

// TestGatewayHedgeOverhead: arming hedging must be free when nothing is
// slow — the timer is the only addition to the happy path, and it never
// fires against a healthy cached shard. Same SLO as
// TestGatewayRouteOverhead: p99 < 1ms over a warmed shard.
func TestGatewayHedgeOverhead(t *testing.T) {
	if raceEnabled {
		t.Skip("latency SLO is calibrated without race-detector instrumentation; hedging behaviour is covered by TestGatewayHedgeWin")
	}
	nodes := startCluster(t, 3)
	_, ts := startGatewayOpts(t, nodes, GatewayOptions{Hedge: true})
	body := mustMarshal(t, thresholdReq(64))

	const warm, reps = 20, 200
	lat := make([]float64, 0, reps)
	for i := 0; i < warm+reps; i++ {
		began := time.Now()
		resp := postJSON(t, ts.URL+"/v1/threshold", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("rep %d: status %d", i, resp.StatusCode)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if i >= warm {
			lat = append(lat, time.Since(began).Seconds())
		}
	}
	sort.Float64s(lat)
	p99 := lat[len(lat)*99/100]
	t.Logf("hedging-armed route overhead: p50 %.3fms p99 %.3fms", lat[len(lat)/2]*1e3, p99*1e3)
	if p99 >= 1e-3 {
		t.Errorf("hedging-armed routing p99 %.3fms, SLO < 1ms", p99*1e3)
	}
}

// syncString is a tiny typed wrapper so tests can record a header
// from a handler goroutine without a data race.
type syncString struct {
	mu sync.Mutex
	s  string
}

func (a *syncString) Store(s string) { a.mu.Lock(); a.s = s; a.mu.Unlock() }
func (a *syncString) Load() string   { a.mu.Lock(); defer a.mu.Unlock(); return a.s }
