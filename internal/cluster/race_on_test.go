//go:build race

package cluster

// raceEnabled reports whether the race detector instruments this test
// binary. Latency-SLO tests consult it: the detector's per-access
// shadow-memory checks inflate wall-clock by several multiples, so a
// bound calibrated for production code would only measure the
// instrumentation.
const raceEnabled = true
