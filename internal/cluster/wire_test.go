package cluster

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestParseMessageRoundTrip(t *testing.T) {
	in := Message{Type: TypeHeartbeat, From: Member{Name: "rep-0", URL: "http://10.0.0.1:8080"}, Ring: "abcd1234"}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ParseMessage(data)
	if err != nil {
		t.Fatalf("round trip failed: %v", err)
	}
	if out != in {
		t.Fatalf("round trip changed the message: %+v vs %+v", out, in)
	}
}

func TestParseMessageRejects(t *testing.T) {
	cases := []struct {
		name string
		data string
	}{
		{"empty", ``},
		{"not json", `hello`},
		{"unknown type", `{"type":"elect","from":{"name":"a","url":"http://x"}}`},
		{"unknown field", `{"type":"hello","from":{"name":"a","url":"http://x"},"term":4}`},
		{"trailing data", `{"type":"hello","from":{"name":"a","url":"http://x"}}{}`},
		{"bad name", `{"type":"hello","from":{"name":"A_b","url":"http://x"}}`},
		{"empty name", `{"type":"hello","from":{"name":"","url":"http://x"}}`},
		{"relative url", `{"type":"hello","from":{"name":"a","url":"/local"}}`},
		{"ftp url", `{"type":"hello","from":{"name":"a","url":"ftp://x"}}`},
		{"long ring", `{"type":"hello","from":{"name":"a","url":"http://x"},"ring":"` + strings.Repeat("f", 65) + `"}`},
	}
	for _, tc := range cases {
		if _, err := ParseMessage([]byte(tc.data)); err == nil {
			t.Errorf("%s: ParseMessage accepted %q", tc.name, tc.data)
		}
	}
}

func TestValidMemberName(t *testing.T) {
	good := []string{"a", "rep-0", "node-42-b", "0x", strings.Repeat("a", 63)}
	for _, s := range good {
		if !ValidMemberName(s) {
			t.Errorf("ValidMemberName(%q) = false, want true", s)
		}
	}
	bad := []string{"", "-a", "A", "a.b", "a b", "ü", strings.Repeat("a", 64)}
	for _, s := range bad {
		if ValidMemberName(s) {
			t.Errorf("ValidMemberName(%q) = true, want false", s)
		}
	}
}
