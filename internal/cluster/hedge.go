package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/resilience"
)

// deadlineHeader is the end-to-end deadline budget header. The client
// states its total budget; every hop that spends time decrements it so
// the replica sees what is actually left, not what the client started
// with (see docs/API.md).
const deadlineHeader = "X-Deadline-Ms"

// latencyRing is a bounded window of recent successful proxy latencies,
// feeding the adaptive hedge delay. Fixed size, mutex-guarded: the
// gateway observes one sample per relayed response.
type latencyRing struct {
	mu  sync.Mutex
	buf [128]time.Duration
	n   int // filled entries, <= len(buf)
	idx int
}

func (l *latencyRing) observe(d time.Duration) {
	l.mu.Lock()
	l.buf[l.idx] = d
	l.idx = (l.idx + 1) % len(l.buf)
	if l.n < len(l.buf) {
		l.n++
	}
	l.mu.Unlock()
}

// p99 returns the 99th percentile of the window, or ok=false while
// fewer than 16 samples exist — too cold to trust.
func (l *latencyRing) p99() (time.Duration, bool) {
	l.mu.Lock()
	n := l.n
	samples := make([]time.Duration, n)
	copy(samples, l.buf[:n])
	l.mu.Unlock()
	if n < 16 {
		return 0, false
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	i := n * 99 / 100
	if i >= n {
		i = n - 1
	}
	return samples[i], true
}

// hedgeDelay is how long the primary attempt may stay silent before a
// hedge fires: the fixed HedgeAfter if set, else the observed p99
// clamped to [HedgeMin, HedgeMax]. A cold window uses HedgeMax, so a
// freshly started gateway hedges only against genuinely stuck peers.
func (g *Gateway) hedgeDelay() time.Duration {
	if g.opts.HedgeAfter > 0 {
		return g.opts.HedgeAfter
	}
	p, ok := g.lat.p99()
	if !ok || p > g.opts.HedgeMax {
		return g.opts.HedgeMax
	}
	if p < g.opts.HedgeMin {
		return g.opts.HedgeMin
	}
	return p
}

// clientBudget parses the client's X-Deadline-Ms header. 0 means "no
// budget to manage": absent, malformed, or non-positive values are
// forwarded verbatim so the replica answers the canonical 400 — the
// gateway never silently repairs a bad request.
func clientBudget(r *http.Request) time.Duration {
	raw := r.Header.Get(deadlineHeader)
	if raw == "" {
		return 0
	}
	ms, err := strconv.Atoi(raw)
	if err != nil || ms <= 0 {
		return 0
	}
	return time.Duration(ms) * time.Millisecond
}

// hopHeaders builds the forwarded header set for one proxy attempt,
// decrementing the deadline budget by the time already spent in the
// gateway (queueing, earlier failed attempts, hedge waits). ok=false
// means the budget is exhausted: forwarding a request whose deadline
// cannot cover any work only burns a replica slot.
func (g *Gateway) hopHeaders(r *http.Request, budget time.Duration, arrived time.Time) (http.Header, bool) {
	hdr := forwardHeaders(r)
	if budget <= 0 {
		return hdr, true
	}
	remaining := budget - time.Since(arrived)
	if remaining < time.Millisecond {
		return nil, false
	}
	hdr.Set(deadlineHeader, strconv.FormatInt(remaining.Milliseconds(), 10))
	return hdr, true
}

// rejectDeadline answers 504 without forwarding: the client's budget
// was spent inside the gateway, so the replica's answer could never
// arrive in time anyway.
func (g *Gateway) rejectDeadline(w http.ResponseWriter, budget time.Duration) {
	g.metrics.deadlineGone.Inc()
	rejectWire(w, http.StatusGatewayTimeout, "deadline_exceeded",
		fmt.Sprintf("deadline budget of %s spent before the request could be forwarded", budget), 1)
}

// hedgeAttempt is one in-flight proxy attempt in a hedged race.
type hedgeAttempt struct {
	name   string
	br     *resilience.Breaker
	cancel context.CancelFunc
	ch     <-chan PostResult
	rank   int
	hedge  bool
}

// routeHedged proxies body to the ring owners with hedging: the primary
// attempt races a timer derived from the p99 of recent proxy latencies;
// if the timer wins, one hedge copy goes to the next breaker-admitted
// owner and the first success is relayed while the loser is cancelled
// and synchronously drained. Breaker discipline matches the sequential
// path exactly — transport failures count, HTTP responses prove the
// peer alive, and a cancelled loser's outcome proves nothing.
func (g *Gateway) routeHedged(w http.ResponseWriter, r *http.Request, owners []string, body []byte, budget time.Duration, arrived time.Time) {
	var lastErr error
	next := 0 // next owner rank to consider

	// admit returns the next owner whose breaker accepts a request,
	// consuming skipped ranks the same way the sequential path does.
	admit := func() *hedgeAttempt {
		for next < len(owners) {
			name, rank := owners[next], next
			next++
			br := g.pool.Breaker(name)
			if br == nil {
				continue // self or vanished member
			}
			if err := br.Allow(); err != nil {
				g.metrics.breakerSkips.Inc()
				lastErr = fmt.Errorf("peer %s: %w", name, err)
				continue
			}
			return &hedgeAttempt{name: name, br: br, rank: rank}
		}
		return nil
	}
	// launch starts an attempt under its own cancellable context; false
	// means the deadline budget is already spent.
	launch := func(a *hedgeAttempt) bool {
		hdr, ok := g.hopHeaders(r, budget, arrived)
		if !ok {
			return false
		}
		ctx, cancel := context.WithCancel(r.Context())
		a.cancel = cancel
		a.ch = g.pool.PostAsync(ctx, a.name, r.URL.Path, body, hdr)
		return true
	}
	// abandon cancels a losing attempt and synchronously drains it so no
	// goroutine outlives the request. The loser was cancelled by us, not
	// refused by the peer, so its breaker sees a neutral outcome.
	abandon := func(a *hedgeAttempt) {
		a.cancel()
		res := <-a.ch
		a.br.Record(nil)
		if res.Resp != nil {
			res.Resp.Body.Close()
		}
	}

	for {
		primary := admit()
		if primary == nil {
			break
		}
		if !launch(primary) {
			g.rejectDeadline(w, budget)
			return
		}
		inflight := []*hedgeAttempt{primary}
		timer := time.NewTimer(g.hedgeDelay())
		for len(inflight) > 0 {
			var res PostResult
			var from *hedgeAttempt
			if len(inflight) == 1 {
				select {
				case res = <-inflight[0].ch:
					from = inflight[0]
				case <-timer.C:
					// Primary silent past the hedge delay: fire one hedge to
					// the next admitted owner (if any; otherwise keep
					// waiting — the drained timer never fires again).
					if h := admit(); h != nil && launch(h) {
						h.hedge = true
						g.metrics.hedges.Inc()
						inflight = append(inflight, h)
					}
					continue
				}
			} else {
				select {
				case res = <-inflight[0].ch:
					from = inflight[0]
				case res = <-inflight[1].ch:
					from = inflight[1]
				}
			}
			if res.Err != nil {
				if r.Context().Err() != nil {
					// The client hung up mid-proxy; that proves nothing about
					// any peer, and nobody is reading a reroute's answer.
					from.br.Record(nil)
					from.cancel()
					for _, a := range inflight {
						if a != from {
							abandon(a)
						}
					}
					timer.Stop()
					g.log.Info("gateway: request abandoned by client", "peer", from.name, "path", r.URL.Path)
					return
				}
				from.br.Record(res.Err)
				from.cancel()
				g.metrics.reroutes.Inc()
				lastErr = fmt.Errorf("peer %s: %w", from.name, res.Err)
				g.log.Warn("gateway: peer unreachable, rerouting", "peer", from.name, "path", r.URL.Path, "err", res.Err)
				kept := inflight[:0]
				for _, a := range inflight {
					if a != from {
						kept = append(kept, a)
					}
				}
				inflight = kept
				continue
			}
			// Any HTTP response proves the peer is alive.
			from.br.Record(nil)
			for _, a := range inflight {
				if a != from {
					abandon(a)
				}
			}
			timer.Stop()
			if from.hedge {
				g.metrics.hedgeWins.Inc()
				g.log.Info("gateway: hedge won", "peer", from.name, "rank", from.rank, "path", r.URL.Path)
			} else if from.rank > 0 {
				g.log.Info("gateway: served by failover owner", "peer", from.name, "rank", from.rank)
			}
			g.lat.observe(time.Since(arrived))
			g.relay(w, res.Resp, from.name)
			g.metrics.routedCounter(from.name).Inc()
			// Cancel only after relay has drained the body: cancelling the
			// attempt context aborts an in-progress body read.
			from.cancel()
			return
		}
		timer.Stop()
		// Every in-flight attempt failed; start a fresh primary (with a
		// fresh hedge timer) on the next admitted owner.
	}
	g.metrics.noPeer.Inc()
	msg := "no healthy replica owns this shard"
	if lastErr != nil {
		msg = fmt.Sprintf("%s (last error: %v)", msg, lastErr)
	}
	rejectWire(w, http.StatusServiceUnavailable, "no_peer", msg, 1)
}
