package blas

import (
	"fmt"
	"math/rand"
	"testing"
)

// Kernel benchmarks for the real pure-Go BLAS. These measure the library
// that executes GPU-BLOB's checksum validation; FLOP rates are reported via
// b.SetBytes-style custom metrics below.

func benchDgemm(b *testing.B, m, n, k int, f func(m, n, k int, a []float64, b2 []float64, c []float64)) {
	r := rand.New(rand.NewSource(42))
	a := randSlice64(r, m*k)
	bb := randSlice64(r, k*n)
	c := make([]float64, m*n)
	flops := 2 * float64(m) * float64(n) * float64(k)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f(m, n, k, a, bb, c)
	}
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
}

func BenchmarkOptDgemm(b *testing.B) {
	for _, n := range []int{64, 256, 512, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchDgemm(b, n, n, n, func(m, nn, k int, a, bb, c []float64) {
				OptDgemm(NoTrans, NoTrans, m, nn, k, 1, a, m, bb, k, 0, c, m)
			})
		})
	}
}

func BenchmarkRefDgemm(b *testing.B) {
	for _, n := range []int{64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchDgemm(b, n, n, n, func(m, nn, k int, a, bb, c []float64) {
				RefDgemm(NoTrans, NoTrans, m, nn, k, 1, a, m, bb, k, 0, c, m)
			})
		})
	}
}

func BenchmarkOptDgemmNonSquare(b *testing.B) {
	shapes := []struct {
		name    string
		m, n, k int
	}{
		{"tallK_256x256x4096", 256, 256, 4096},
		{"thinK_2048x2048x32", 2048, 2048, 32},
		{"smallMN_32x32x4096", 32, 32, 4096},
	}
	for _, sh := range shapes {
		b.Run(sh.name, func(b *testing.B) {
			benchDgemm(b, sh.m, sh.n, sh.k, func(m, nn, k int, a, bb, c []float64) {
				OptDgemm(NoTrans, NoTrans, m, nn, k, 1, a, m, bb, k, 0, c, m)
			})
		})
	}
}

func BenchmarkOptSgemm(b *testing.B) {
	for _, n := range []int{256, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			r := rand.New(rand.NewSource(42))
			a := randSlice32(r, n*n)
			bb := randSlice32(r, n*n)
			c := make([]float32, n*n)
			flops := 2 * float64(n) * float64(n) * float64(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				OptSgemm(NoTrans, NoTrans, n, n, n, 1, a, n, bb, n, 0, c, n)
			}
			b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
		})
	}
}

func BenchmarkOptDgemv(b *testing.B) {
	for _, n := range []int{256, 1024, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			r := rand.New(rand.NewSource(42))
			a := randSlice64(r, n*n)
			x := randSlice64(r, n)
			y := make([]float64, n)
			b.SetBytes(int64(n) * int64(n) * 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				OptDgemv(NoTrans, n, n, 1, a, n, x, 1, 0, y, 1)
			}
		})
	}
}

func BenchmarkOptSgemvTrans(b *testing.B) {
	n := 2048
	r := rand.New(rand.NewSource(42))
	a := randSlice32(r, n*n)
	x := randSlice32(r, n)
	y := make([]float32, n)
	b.SetBytes(int64(n) * int64(n) * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		OptSgemv(Trans, n, n, 1, a, n, x, 1, 0, y, 1)
	}
}

func BenchmarkDgemmBatched(b *testing.B) {
	const batch, n = 64, 32
	r := rand.New(rand.NewSource(42))
	a := randSlice64(r, batch*n*n)
	bb := randSlice64(r, batch*n*n)
	c := make([]float64, batch*n*n)
	flops := 2 * float64(batch) * float64(n) * float64(n) * float64(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DgemmStridedBatched(NoTrans, NoTrans, n, n, n, 1, a, n, n*n, bb, n, n*n, 0, c, n, n*n, batch)
	}
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
}

func BenchmarkDdot(b *testing.B) {
	const n = 1 << 16
	r := rand.New(rand.NewSource(42))
	x := randSlice64(r, n)
	y := randSlice64(r, n)
	b.SetBytes(n * 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = RefDdot(n, x, 1, y, 1)
	}
}

func BenchmarkDaxpy(b *testing.B) {
	const n = 1 << 16
	r := rand.New(rand.NewSource(42))
	x := randSlice64(r, n)
	y := randSlice64(r, n)
	b.SetBytes(n * 24)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RefDaxpy(n, 1.0001, x, 1, y, 1)
	}
}
