package blas

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// symmetrize builds a full symmetric matrix from random data so symv/symm
// results can be checked against plain gemv/gemm.
func symmetrize(r *rand.Rand, n int) []float64 {
	a := make([]float64, n*n)
	for j := 0; j < n; j++ {
		for i := 0; i <= j; i++ {
			v := r.Float64()*2 - 1
			a[i+j*n] = v
			a[j+i*n] = v
		}
	}
	return a
}

// poisonTriangle overwrites the NOT-referenced triangle with NaN to prove a
// kernel only reads the uplo triangle it was told to.
func poisonTriangle(a []float64, n int, uplo Uplo) []float64 {
	p := append([]float64(nil), a...)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			if (uplo == Upper && i > j) || (uplo == Lower && i < j) {
				p[i+j*n] = math.NaN()
			}
		}
	}
	return p
}

func TestDsymvMatchesGemv(t *testing.T) {
	for _, uplo := range []Uplo{Upper, Lower} {
		f := func(seed int64) bool {
			r := rand.New(rand.NewSource(seed))
			n := 1 + r.Intn(40)
			full := symmetrize(r, n)
			poisoned := poisonTriangle(full, n, uplo)
			x := randSlice64(r, n)
			y0 := randSlice64(r, n)
			ySym := append([]float64(nil), y0...)
			yGemv := append([]float64(nil), y0...)
			RefDsymv(uplo, n, 1.5, poisoned, n, x, 1, 0.5, ySym, 1)
			RefDgemv(NoTrans, n, n, 1.5, full, n, x, 1, 0.5, yGemv, 1)
			return maxDiff64(ySym, yGemv) <= 1e-12*float64(n+1)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
			t.Fatalf("uplo=%c: %v", uplo, err)
		}
	}
}

func TestSsymvMatchesSgemv(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	n := 37
	full := make([]float32, n*n)
	for j := 0; j < n; j++ {
		for i := 0; i <= j; i++ {
			v := r.Float32()
			full[i+j*n] = v
			full[j+i*n] = v
		}
	}
	x := randSlice32(r, n)
	y1 := make([]float32, n)
	y2 := make([]float32, n)
	RefSsymv(Upper, n, 1, full, n, x, 1, 0, y1, 1)
	RefSgemv(NoTrans, n, n, 1, full, n, x, 1, 0, y2, 1)
	if d := maxDiff32(y1, y2); d > 1e-4 {
		t.Fatalf("ssymv vs sgemv diff %g", d)
	}
}

func TestDgerMatchesGemm(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, n := 1+r.Intn(30), 1+r.Intn(30)
		x := randSlice64(r, m)
		y := randSlice64(r, n)
		a0 := randSlice64(r, m*n)
		aGer := append([]float64(nil), a0...)
		aGemm := append([]float64(nil), a0...)
		RefDger(m, n, 2, x, 1, y, 1, aGer, m)
		// x*yᵀ as an m x n gemm with k=1, beta=1.
		RefDgemm(NoTrans, NoTrans, m, n, 1, 2, x, m, y, 1, 1, aGemm, m)
		return maxDiff64(aGer, aGemm) <= 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// trsv(trmv(x)) must restore x for well-conditioned triangular systems.
func TestDtrmvTrsvRoundTrip(t *testing.T) {
	for _, uplo := range []Uplo{Upper, Lower} {
		for _, trans := range []Transpose{NoTrans, Trans} {
			for _, diag := range []Diag{NonUnit, Unit} {
				f := func(seed int64) bool {
					r := rand.New(rand.NewSource(seed))
					n := 1 + r.Intn(30)
					a := make([]float64, n*n)
					for j := 0; j < n; j++ {
						for i := 0; i < n; i++ {
							inTri := (uplo == Lower && i >= j) || (uplo == Upper && i <= j)
							if !inTri {
								continue
							}
							if i == j {
								a[i+j*n] = 2 + r.Float64() // dominant diagonal
							} else {
								a[i+j*n] = (r.Float64()*2 - 1) / float64(n)
							}
						}
					}
					x := randSlice64(r, n)
					got := append([]float64(nil), x...)
					RefDtrmv(uplo, trans, diag, n, a, n, got, 1)
					RefDtrsv(uplo, trans, diag, n, a, n, got, 1)
					return maxDiff64(got, x) <= 1e-9
				}
				if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
					t.Fatalf("uplo=%c trans=%c diag=%c: %v", uplo, trans, diag, err)
				}
			}
		}
	}
}

func TestStrmvStrsvRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	n := 25
	a := make([]float32, n*n)
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			if i == j {
				a[i+j*n] = 2 + r.Float32()
			} else {
				a[i+j*n] = (r.Float32()*2 - 1) / float32(n)
			}
		}
	}
	x := randSlice32(r, n)
	got := append([]float32(nil), x...)
	RefStrmv(Lower, NoTrans, NonUnit, n, a, n, got, 1)
	RefStrsv(Lower, NoTrans, NonUnit, n, a, n, got, 1)
	if d := maxDiff32(got, x); d > 1e-4 {
		t.Fatalf("strmv/strsv round trip diff %g", d)
	}
}

func TestDsymmMatchesGemm(t *testing.T) {
	for _, side := range []Side{Left, Right} {
		for _, uplo := range []Uplo{Upper, Lower} {
			f := func(seed int64) bool {
				r := rand.New(rand.NewSource(seed))
				m, n := 1+r.Intn(20), 1+r.Intn(20)
				na := m
				if side == Right {
					na = n
				}
				full := symmetrize(r, na)
				poisoned := poisonTriangle(full, na, uplo)
				b := randSlice64(r, m*n)
				c0 := randSlice64(r, m*n)
				cSymm := append([]float64(nil), c0...)
				cGemm := append([]float64(nil), c0...)
				RefDsymm(side, uplo, m, n, 1.5, poisoned, na, b, m, 0.5, cSymm, m)
				if side == Left {
					RefDgemm(NoTrans, NoTrans, m, n, m, 1.5, full, m, b, m, 0.5, cGemm, m)
				} else {
					RefDgemm(NoTrans, NoTrans, m, n, n, 1.5, b, m, full, n, 0.5, cGemm, m)
				}
				return maxDiff64(cSymm, cGemm) <= 1e-12*float64(na+1)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
				t.Fatalf("side=%c uplo=%c: %v", side, uplo, err)
			}
		}
	}
}

func TestDsyrkMatchesGemm(t *testing.T) {
	for _, uplo := range []Uplo{Upper, Lower} {
		for _, trans := range []Transpose{NoTrans, Trans} {
			f := func(seed int64) bool {
				r := rand.New(rand.NewSource(seed))
				n, k := 1+r.Intn(20), 1+r.Intn(20)
				rows, cols := n, k
				if trans == Trans {
					rows, cols = k, n
				}
				a := randSlice64(r, rows*cols)
				cFull := make([]float64, n*n)
				// Full product via gemm: C = A*Aᵀ (or Aᵀ*A).
				if trans == NoTrans {
					RefDgemm(NoTrans, Trans, n, n, k, 1, a, n, a, n, 0, cFull, n)
				} else {
					RefDgemm(Trans, NoTrans, n, n, k, 1, a, k, a, k, 0, cFull, n)
				}
				cSyrk := make([]float64, n*n)
				RefDsyrk(uplo, trans, n, k, 1, a, rows, 0, cSyrk, n)
				for j := 0; j < n; j++ {
					for i := 0; i < n; i++ {
						inTri := (uplo == Upper && i <= j) || (uplo == Lower && i >= j)
						if inTri && math.Abs(cSyrk[i+j*n]-cFull[i+j*n]) > 1e-12*float64(k+1) {
							return false
						}
						if !inTri && cSyrk[i+j*n] != 0 {
							return false // other triangle untouched (buffer was zero)
						}
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
				t.Fatalf("uplo=%c trans=%c: %v", uplo, trans, err)
			}
		}
	}
}

// trsm must invert trmm: B == trsm(trmm(B)).
func TestDtrmmTrsmRoundTrip(t *testing.T) {
	for _, side := range []Side{Left, Right} {
		for _, uplo := range []Uplo{Upper, Lower} {
			for _, trans := range []Transpose{NoTrans, Trans} {
				for _, diag := range []Diag{NonUnit, Unit} {
					f := func(seed int64) bool {
						r := rand.New(rand.NewSource(seed))
						m, n := 1+r.Intn(15), 1+r.Intn(15)
						na := m
						if side == Right {
							na = n
						}
						a := make([]float64, na*na)
						for j := 0; j < na; j++ {
							for i := 0; i < na; i++ {
								inTri := (uplo == Lower && i >= j) || (uplo == Upper && i <= j)
								if !inTri {
									continue
								}
								if i == j {
									a[i+j*na] = 2 + r.Float64()
								} else {
									a[i+j*na] = (r.Float64()*2 - 1) / float64(na)
								}
							}
						}
						b := randSlice64(r, m*n)
						got := append([]float64(nil), b...)
						RefDtrmm(side, uplo, trans, diag, m, n, 2, a, na, got, m)
						RefDtrsm(side, uplo, trans, diag, m, n, 0.5, a, na, got, m)
						return maxDiff64(got, b) <= 1e-9
					}
					if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
						t.Fatalf("side=%c uplo=%c trans=%c diag=%c: %v", side, uplo, trans, diag, err)
					}
				}
			}
		}
	}
}

// trsm Left solves op(A)*X = alpha*B: verify residual directly.
func TestDtrsmResidual(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	m, n := 12, 9
	a := make([]float64, m*m)
	for j := 0; j < m; j++ {
		for i := j; i < m; i++ {
			if i == j {
				a[i+j*m] = 3 + r.Float64()
			} else {
				a[i+j*m] = (r.Float64()*2 - 1) / float64(m)
			}
		}
	}
	b := randSlice64(r, m*n)
	x := append([]float64(nil), b...)
	RefDtrsm(Left, Lower, NoTrans, NonUnit, m, n, 2, a, m, x, m)
	// Residual: A*X should equal 2*B. Build full lower-triangular A.
	ax := make([]float64, m*n)
	RefDgemm(NoTrans, NoTrans, m, n, m, 1, a, m, x, m, 0, ax, m)
	for i := range ax {
		if math.Abs(ax[i]-2*b[i]) > 1e-10 {
			t.Fatalf("trsm residual at %d: %g vs %g", i, ax[i], 2*b[i])
		}
	}
}
