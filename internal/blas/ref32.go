package blas

import "math"

// Float32 reference kernels. These mirror ref64.go; see that file for the
// semantic documentation. Accumulation is done in float32 to mirror what a
// vendor SGEMM/SGEMV does, which matters for the paper's checksum tolerance.

// RefSgemm computes C = alpha*op(A)*op(B) + beta*C.
func RefSgemm(transA, transB Transpose, m, n, k int, alpha float32, a []float32, lda int, b []float32, ldb int, beta float32, c []float32, ldc int) {
	checkGemm(transA, transB, m, n, k, lda, ldb, ldc)
	if m == 0 || n == 0 {
		return
	}
	for j := 0; j < n; j++ {
		cj := c[j*ldc : j*ldc+m]
		if beta == 0 {
			for i := range cj {
				cj[i] = 0
			}
		} else if beta != 1 {
			for i := range cj {
				cj[i] *= beta
			}
		}
	}
	if alpha == 0 || k == 0 {
		return
	}
	at := isTrans(transA)
	bt := isTrans(transB)
	aAt := func(i, l int) float32 {
		if at {
			return a[l+i*lda]
		}
		return a[i+l*lda]
	}
	bAt := func(l, j int) float32 {
		if bt {
			return b[j+l*ldb]
		}
		return b[l+j*ldb]
	}
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			var sum float32
			for l := 0; l < k; l++ {
				sum += aAt(i, l) * bAt(l, j)
			}
			c[i+j*ldc] += alpha * sum
		}
	}
}

// RefSgemv computes y = alpha*op(A)*x + beta*y for an m-by-n matrix A.
func RefSgemv(trans Transpose, m, n int, alpha float32, a []float32, lda int, x []float32, incX int, beta float32, y []float32, incY int) {
	checkGemv(trans, m, n, lda, incX, incY)
	lenY := lenGemvY(trans, m, n)
	if lenY == 0 {
		return
	}
	ky := vecStart(lenY, incY)
	for i := 0; i < lenY; i++ {
		idx := ky + i*incY
		if beta == 0 {
			y[idx] = 0
		} else if beta != 1 {
			y[idx] *= beta
		}
	}
	lenX := lenGemvX(trans, m, n)
	if alpha == 0 || lenX == 0 {
		return
	}
	kx := vecStart(lenX, incX)
	if isTrans(trans) {
		for j := 0; j < n; j++ {
			var sum float32
			col := a[j*lda : j*lda+m]
			for i := 0; i < m; i++ {
				sum += col[i] * x[kx+i*incX]
			}
			y[ky+j*incY] += alpha * sum
		}
		return
	}
	for j := 0; j < n; j++ {
		xv := alpha * x[kx+j*incX]
		if xv == 0 {
			continue
		}
		col := a[j*lda : j*lda+m]
		for i := 0; i < m; i++ {
			y[ky+i*incY] += xv * col[i]
		}
	}
}

// RefSger computes the rank-1 update A += alpha*x*yᵀ.
func RefSger(m, n int, alpha float32, x []float32, incX int, y []float32, incY int, a []float32, lda int) {
	if m < 0 || n < 0 {
		panic("blas: negative ger dimension")
	}
	if lda < max(1, m) {
		panic("blas: ger lda too small")
	}
	if incX == 0 || incY == 0 {
		panic("blas: zero vector increment")
	}
	if m == 0 || n == 0 || alpha == 0 {
		return
	}
	kx, ky := vecStart(m, incX), vecStart(n, incY)
	for j := 0; j < n; j++ {
		yv := alpha * y[ky+j*incY]
		if yv == 0 {
			continue
		}
		col := a[j*lda : j*lda+m]
		for i := 0; i < m; i++ {
			col[i] += x[kx+i*incX] * yv
		}
	}
}

// RefSsymv computes y = alpha*A*x + beta*y for symmetric A.
func RefSsymv(uplo Uplo, n int, alpha float32, a []float32, lda int, x []float32, incX int, beta float32, y []float32, incY int) {
	if uplo != Upper && uplo != Lower {
		panic("blas: invalid uplo")
	}
	if n < 0 {
		panic("blas: negative symv dimension")
	}
	if lda < max(1, n) {
		panic("blas: symv lda too small")
	}
	if incX == 0 || incY == 0 {
		panic("blas: zero vector increment")
	}
	if n == 0 {
		return
	}
	ky := vecStart(n, incY)
	for i := 0; i < n; i++ {
		idx := ky + i*incY
		if beta == 0 {
			y[idx] = 0
		} else if beta != 1 {
			y[idx] *= beta
		}
	}
	if alpha == 0 {
		return
	}
	kx := vecStart(n, incX)
	at := func(i, j int) float32 {
		if (uplo == Upper && i > j) || (uplo == Lower && i < j) {
			return a[j+i*lda]
		}
		return a[i+j*lda]
	}
	for i := 0; i < n; i++ {
		var sum float32
		for j := 0; j < n; j++ {
			sum += at(i, j) * x[kx+j*incX]
		}
		y[ky+i*incY] += alpha * sum
	}
}

// RefStrmv computes x = op(A)*x for triangular A.
func RefStrmv(uplo Uplo, trans Transpose, diag Diag, n int, a []float32, lda int, x []float32, incX int) {
	if uplo != Upper && uplo != Lower {
		panic("blas: invalid uplo")
	}
	if !trans.valid() {
		panic("blas: invalid transpose")
	}
	if diag != Unit && diag != NonUnit {
		panic("blas: invalid diag")
	}
	if n < 0 {
		panic("blas: negative trmv dimension")
	}
	if lda < max(1, n) {
		panic("blas: trmv lda too small")
	}
	if incX == 0 {
		panic("blas: zero vector increment")
	}
	if n == 0 {
		return
	}
	kx := vecStart(n, incX)
	at := func(i, j int) float32 {
		if i == j && diag == Unit {
			return 1
		}
		lower := uplo == Lower
		if isTrans(trans) {
			i, j = j, i
		}
		if (lower && i < j) || (!lower && i > j) {
			return 0
		}
		return a[i+j*lda]
	}
	out := make([]float32, n)
	for i := 0; i < n; i++ {
		var sum float32
		for j := 0; j < n; j++ {
			v := at(i, j)
			if v != 0 {
				sum += v * x[kx+j*incX]
			}
		}
		out[i] = sum
	}
	for i := 0; i < n; i++ {
		x[kx+i*incX] = out[i]
	}
}

// RefStrsv solves op(A)*x = b in place for triangular A.
func RefStrsv(uplo Uplo, trans Transpose, diag Diag, n int, a []float32, lda int, x []float32, incX int) {
	if uplo != Upper && uplo != Lower {
		panic("blas: invalid uplo")
	}
	if !trans.valid() {
		panic("blas: invalid transpose")
	}
	if diag != Unit && diag != NonUnit {
		panic("blas: invalid diag")
	}
	if n < 0 {
		panic("blas: negative trsv dimension")
	}
	if lda < max(1, n) {
		panic("blas: trsv lda too small")
	}
	if incX == 0 {
		panic("blas: zero vector increment")
	}
	if n == 0 {
		return
	}
	kx := vecStart(n, incX)
	lower := uplo == Lower
	if isTrans(trans) {
		lower = !lower
	}
	elem := func(i, j int) float32 {
		if isTrans(trans) {
			return a[j+i*lda]
		}
		return a[i+j*lda]
	}
	if lower {
		for i := 0; i < n; i++ {
			sum := x[kx+i*incX]
			for j := 0; j < i; j++ {
				sum -= elem(i, j) * x[kx+j*incX]
			}
			if diag == NonUnit {
				sum /= elem(i, i)
			}
			x[kx+i*incX] = sum
		}
		return
	}
	for i := n - 1; i >= 0; i-- {
		sum := x[kx+i*incX]
		for j := i + 1; j < n; j++ {
			sum -= elem(i, j) * x[kx+j*incX]
		}
		if diag == NonUnit {
			sum /= elem(i, i)
		}
		x[kx+i*incX] = sum
	}
}

// --- Level 1 references -------------------------------------------------

// RefSdot returns xᵀy over n elements, accumulated in float32.
func RefSdot(n int, x []float32, incX int, y []float32, incY int) float32 {
	if n <= 0 {
		return 0
	}
	kx, ky := vecStart(n, incX), vecStart(n, incY)
	var sum float32
	for i := 0; i < n; i++ {
		sum += x[kx+i*incX] * y[ky+i*incY]
	}
	return sum
}

// RefSaxpy computes y += alpha*x over n elements.
func RefSaxpy(n int, alpha float32, x []float32, incX int, y []float32, incY int) {
	if n <= 0 || alpha == 0 {
		return
	}
	kx, ky := vecStart(n, incX), vecStart(n, incY)
	for i := 0; i < n; i++ {
		y[ky+i*incY] += alpha * x[kx+i*incX]
	}
}

// RefSscal computes x *= alpha over n elements.
func RefSscal(n int, alpha float32, x []float32, incX int) {
	if n <= 0 || incX <= 0 {
		return
	}
	for i := 0; i < n; i++ {
		x[i*incX] *= alpha
	}
}

// RefSnrm2 returns the Euclidean norm of x with float64 accumulation, as
// reference SNRM2 implementations do.
func RefSnrm2(n int, x []float32, incX int) float32 {
	if n <= 0 || incX <= 0 {
		return 0
	}
	var sum float64
	for i := 0; i < n; i++ {
		v := float64(x[i*incX])
		sum += v * v
	}
	return float32(math.Sqrt(sum))
}

// RefSasum returns the sum of absolute values of x.
func RefSasum(n int, x []float32, incX int) float32 {
	if n <= 0 || incX <= 0 {
		return 0
	}
	var sum float32
	for i := 0; i < n; i++ {
		v := x[i*incX]
		if v < 0 {
			v = -v
		}
		sum += v
	}
	return sum
}

// RefIsamax returns the index of the element with the largest absolute
// value, or -1 when n <= 0.
func RefIsamax(n int, x []float32, incX int) int {
	if n <= 0 || incX <= 0 {
		return -1
	}
	abs := func(v float32) float32 {
		if v < 0 {
			return -v
		}
		return v
	}
	best, bestIdx := abs(x[0]), 0
	for i := 1; i < n; i++ {
		if v := abs(x[i*incX]); v > best {
			best, bestIdx = v, i
		}
	}
	return bestIdx
}

// RefScopy copies x into y over n elements.
func RefScopy(n int, x []float32, incX int, y []float32, incY int) {
	if n <= 0 {
		return
	}
	kx, ky := vecStart(n, incX), vecStart(n, incY)
	for i := 0; i < n; i++ {
		y[ky+i*incY] = x[kx+i*incX]
	}
}

// RefSswap exchanges x and y over n elements.
func RefSswap(n int, x []float32, incX int, y []float32, incY int) {
	if n <= 0 {
		return
	}
	kx, ky := vecStart(n, incX), vecStart(n, incY)
	for i := 0; i < n; i++ {
		x[kx+i*incX], y[ky+i*incY] = y[ky+i*incY], x[kx+i*incX]
	}
}

// RefSrot applies the plane rotation (c, s) to x and y.
func RefSrot(n int, x []float32, incX int, y []float32, incY int, c, s float32) {
	if n <= 0 {
		return
	}
	kx, ky := vecStart(n, incX), vecStart(n, incY)
	for i := 0; i < n; i++ {
		xi, yi := x[kx+i*incX], y[ky+i*incY]
		x[kx+i*incX] = c*xi + s*yi
		y[ky+i*incY] = c*yi - s*xi
	}
}
