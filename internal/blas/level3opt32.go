package blas

// Optimized float32 Level-3 kernels beyond GEMM. Each uses the classic
// recursive blocking that reduces TRSM/TRMM/SYRK/SYMM to small reference
// kernels on diagonal blocks plus large OptSgemm updates, so the bulk of
// the FLOPs run through the packed, multi-threaded GEMM path.

// OptStrsm solves op(A)*X = alpha*B (side == Left) or X*op(A) = alpha*B
// (side == Right), overwriting B with X. Semantics match RefStrsm.
func OptStrsm(side Side, uplo Uplo, trans Transpose, diag Diag, m, n int, alpha float32, a []float32, lda int, b []float32, ldb int) {
	// Validate via the reference checks without running it: small problems
	// go straight to the reference kernel (which validates); larger ones
	// recurse, and the first leaf validates the same arguments.
	na := m
	if side == Right {
		na = n
	}
	if na <= level3BlockSize {
		RefStrsm(side, uplo, trans, diag, m, n, alpha, a, lda, b, ldb)
		return
	}
	if m == 0 || n == 0 {
		RefStrsm(side, uplo, trans, diag, m, n, alpha, a, lda, b, ldb)
		return
	}
	// Split A (na x na) into [A11 A12; A21 A22] with A11 n1 x n1.
	n1 := na / 2
	n2 := na - n1
	a11 := a
	a21 := a[n1:]        // lower-left block
	a12 := a[n1*lda:]    // upper-right block
	a22 := a[n1+n1*lda:] // trailing diagonal block

	if side == Left {
		b1 := b
		b2 := b[n1:]
		// Effective order of elimination depends on which triangle op(A)
		// presents: Lower+NoTrans and Upper+Trans solve top-down.
		topDown := (uplo == Lower) != isTrans(trans)
		if topDown {
			// X1 = op(A11)^-1 * alpha*B1
			OptStrsm(side, uplo, trans, diag, n1, n, alpha, a11, lda, b1, ldb)
			// B2 = alpha*B2 - op(A_off)*X1
			if uplo == Lower {
				OptSgemm(trans, NoTrans, n2, n, n1, -1, a21, lda, b1, ldb, alpha, b2, ldb)
			} else {
				OptSgemm(trans, NoTrans, n2, n, n1, -1, a12, lda, b1, ldb, alpha, b2, ldb)
			}
			OptStrsm(side, uplo, trans, diag, n2, n, 1, a22, lda, b2, ldb)
			return
		}
		// Bottom-up: X2 first.
		OptStrsm(side, uplo, trans, diag, n2, n, alpha, a22, lda, b2, ldb)
		if uplo == Upper {
			OptSgemm(trans, NoTrans, n1, n, n2, -1, a12, lda, b2, ldb, alpha, b1, ldb)
		} else {
			OptSgemm(trans, NoTrans, n1, n, n2, -1, a21, lda, b2, ldb, alpha, b1, ldb)
		}
		OptStrsm(side, uplo, trans, diag, n1, n, 1, a11, lda, b1, ldb)
		return
	}

	// side == Right: X * op(A) = alpha*B, splitting B by columns.
	b1 := b
	b2 := b[n1*ldb:]
	// X1 solved first when op(A) presents an upper triangle column-wise:
	// Upper+NoTrans and Lower+Trans eliminate left-to-right.
	leftFirst := (uplo == Upper) != isTrans(trans)
	if leftFirst {
		OptStrsm(side, uplo, trans, diag, m, n1, alpha, a11, lda, b1, ldb)
		// B2 = alpha*B2 - X1 * op(A_off)
		if uplo == Upper {
			OptSgemm(NoTrans, trans, m, n2, n1, -1, b1, ldb, a12, lda, alpha, b2, ldb)
		} else {
			OptSgemm(NoTrans, trans, m, n2, n1, -1, b1, ldb, a21, lda, alpha, b2, ldb)
		}
		OptStrsm(side, uplo, trans, diag, m, n2, 1, a22, lda, b2, ldb)
		return
	}
	OptStrsm(side, uplo, trans, diag, m, n2, alpha, a22, lda, b2, ldb)
	if uplo == Lower {
		OptSgemm(NoTrans, trans, m, n1, n2, -1, b2, ldb, a21, lda, alpha, b1, ldb)
	} else {
		OptSgemm(NoTrans, trans, m, n1, n2, -1, b2, ldb, a12, lda, alpha, b1, ldb)
	}
	OptStrsm(side, uplo, trans, diag, m, n1, 1, a11, lda, b1, ldb)
}

// OptStrmm computes B = alpha*op(A)*B (Left) or B = alpha*B*op(A) (Right).
// Semantics match RefStrmm.
func OptStrmm(side Side, uplo Uplo, trans Transpose, diag Diag, m, n int, alpha float32, a []float32, lda int, b []float32, ldb int) {
	na := m
	if side == Right {
		na = n
	}
	if na <= level3BlockSize || m == 0 || n == 0 {
		RefStrmm(side, uplo, trans, diag, m, n, alpha, a, lda, b, ldb)
		return
	}
	n1 := na / 2
	n2 := na - n1
	a11 := a
	a21 := a[n1:]
	a12 := a[n1*lda:]
	a22 := a[n1+n1*lda:]

	if side == Left {
		b1 := b
		b2 := b[n1:]
		// When op(A) is lower triangular, row block 2 depends on B1, so
		// compute B2 first (its inputs are still unmodified), then B1.
		opLower := (uplo == Lower) != isTrans(trans)
		if opLower {
			OptStrmm(side, uplo, trans, diag, n2, n, alpha, a22, lda, b2, ldb)
			if uplo == Lower {
				OptSgemm(trans, NoTrans, n2, n, n1, alpha, a21, lda, b1, ldb, 1, b2, ldb)
			} else {
				OptSgemm(trans, NoTrans, n2, n, n1, alpha, a12, lda, b1, ldb, 1, b2, ldb)
			}
			OptStrmm(side, uplo, trans, diag, n1, n, alpha, a11, lda, b1, ldb)
			return
		}
		// op(A) upper: B1 depends on old B2; compute B1 first.
		OptStrmm(side, uplo, trans, diag, n1, n, alpha, a11, lda, b1, ldb)
		if uplo == Upper {
			OptSgemm(trans, NoTrans, n1, n, n2, alpha, a12, lda, b2, ldb, 1, b1, ldb)
		} else {
			OptSgemm(trans, NoTrans, n1, n, n2, alpha, a21, lda, b2, ldb, 1, b1, ldb)
		}
		OptStrmm(side, uplo, trans, diag, n2, n, alpha, a22, lda, b2, ldb)
		return
	}

	b1 := b
	b2 := b[n1*ldb:]
	// Right side: B = B*op(A). When op(A) is upper, column block 2 depends
	// on old B1 — compute B2 first.
	opUpper := (uplo == Upper) != isTrans(trans)
	if opUpper {
		OptStrmm(side, uplo, trans, diag, m, n2, alpha, a22, lda, b2, ldb)
		if uplo == Upper {
			OptSgemm(NoTrans, trans, m, n2, n1, alpha, b1, ldb, a12, lda, 1, b2, ldb)
		} else {
			OptSgemm(NoTrans, trans, m, n2, n1, alpha, b1, ldb, a21, lda, 1, b2, ldb)
		}
		OptStrmm(side, uplo, trans, diag, m, n1, alpha, a11, lda, b1, ldb)
		return
	}
	OptStrmm(side, uplo, trans, diag, m, n1, alpha, a11, lda, b1, ldb)
	if uplo == Lower {
		OptSgemm(NoTrans, trans, m, n1, n2, alpha, b2, ldb, a21, lda, 1, b1, ldb)
	} else {
		OptSgemm(NoTrans, trans, m, n1, n2, alpha, b2, ldb, a12, lda, 1, b1, ldb)
	}
	OptStrmm(side, uplo, trans, diag, m, n2, alpha, a22, lda, b2, ldb)
}

// OptSsyrk computes the uplo triangle of C = alpha*A*Aᵀ + beta*C (NoTrans)
// or C = alpha*Aᵀ*A + beta*C (Trans). Semantics match RefSsyrk.
func OptSsyrk(uplo Uplo, trans Transpose, n, k int, alpha float32, a []float32, lda int, beta float32, c []float32, ldc int) {
	if n <= level3BlockSize || n == 0 {
		RefSsyrk(uplo, trans, n, k, alpha, a, lda, beta, c, ldc)
		return
	}
	n1 := n / 2
	n2 := n - n1
	// Row blocks of op(A): op(A) is n x k.
	var a1, a2 []float32
	var ta, tb Transpose
	if isTrans(trans) {
		// A is k x n: op(A) row block i is column block i of A.
		a1, a2 = a, a[n1*lda:]
		ta, tb = Trans, NoTrans
	} else {
		a1, a2 = a, a[n1:]
		ta, tb = NoTrans, Trans
	}
	c11 := c
	c21 := c[n1:]
	c12 := c[n1*ldc:]
	c22 := c[n1+n1*ldc:]
	OptSsyrk(uplo, trans, n1, k, alpha, a1, lda, beta, c11, ldc)
	OptSsyrk(uplo, trans, n2, k, alpha, a2, lda, beta, c22, ldc)
	if uplo == Lower {
		// C21 = alpha*op(A)2*op(A)1ᵀ + beta*C21.
		OptSgemm(ta, tb, n2, n1, k, alpha, a2, lda, a1, lda, beta, c21, ldc)
	} else {
		// C12 = alpha*op(A)1*op(A)2ᵀ + beta*C12.
		OptSgemm(ta, tb, n1, n2, k, alpha, a1, lda, a2, lda, beta, c12, ldc)
	}
}

// OptSsymm computes C = alpha*A*B + beta*C (Left) or C = alpha*B*A + beta*C
// (Right) for symmetric A stored in the uplo triangle. Semantics match
// RefSsymm.
func OptSsymm(side Side, uplo Uplo, m, n int, alpha float32, a []float32, lda int, b []float32, ldb int, beta float32, c []float32, ldc int) {
	na := m
	if side == Right {
		na = n
	}
	if na <= level3BlockSize || m == 0 || n == 0 {
		RefSsymm(side, uplo, m, n, alpha, a, lda, b, ldb, beta, c, ldc)
		return
	}
	n1 := na / 2
	n2 := na - n1
	a11 := a
	a21 := a[n1:]
	a12 := a[n1*lda:]
	a22 := a[n1+n1*lda:]
	// The off-diagonal block of the full symmetric A: stored explicitly in
	// one triangle, implied transposed in the other.
	if side == Left {
		b1 := b
		b2 := b[n1:]
		c1 := c
		c2 := c[n1:]
		// C1 = alpha*(A11*B1 + A12full*B2) + beta*C1
		OptSsymm(side, uplo, n1, n, alpha, a11, lda, b1, ldb, beta, c1, ldc)
		if uplo == Upper {
			OptSgemm(NoTrans, NoTrans, n1, n, n2, alpha, a12, lda, b2, ldb, 1, c1, ldc)
		} else {
			OptSgemm(Trans, NoTrans, n1, n, n2, alpha, a21, lda, b2, ldb, 1, c1, ldc)
		}
		// C2 = alpha*(A21full*B1 + A22*B2) + beta*C2
		OptSsymm(side, uplo, n2, n, alpha, a22, lda, b2, ldb, beta, c2, ldc)
		if uplo == Upper {
			OptSgemm(Trans, NoTrans, n2, n, n1, alpha, a12, lda, b1, ldb, 1, c2, ldc)
		} else {
			OptSgemm(NoTrans, NoTrans, n2, n, n1, alpha, a21, lda, b1, ldb, 1, c2, ldc)
		}
		return
	}
	// side == Right: C = alpha*B*A + beta*C, splitting B and C by columns.
	b1 := b
	b2 := b[n1*ldb:]
	c1 := c
	c2 := c[n1*ldc:]
	// C1 = alpha*(B1*A11 + B2*A21full) + beta*C1
	OptSsymm(side, uplo, m, n1, alpha, a11, lda, b1, ldb, beta, c1, ldc)
	if uplo == Upper {
		OptSgemm(NoTrans, Trans, m, n1, n2, alpha, b2, ldb, a12, lda, 1, c1, ldc)
	} else {
		OptSgemm(NoTrans, NoTrans, m, n1, n2, alpha, b2, ldb, a21, lda, 1, c1, ldc)
	}
	// C2 = alpha*(B1*A12full + B2*A22) + beta*C2
	OptSsymm(side, uplo, m, n2, alpha, a22, lda, b2, ldb, beta, c2, ldc)
	if uplo == Upper {
		OptSgemm(NoTrans, NoTrans, m, n2, n1, alpha, b1, ldb, a12, lda, 1, c2, ldc)
	} else {
		OptSgemm(NoTrans, Trans, m, n2, n1, alpha, b1, ldb, a21, lda, 1, c2, ldc)
	}
}
