package blas

import "repro/internal/parallel"

// Optimized GEMV kernels. GEMV is memory-bandwidth bound: the whole of A is
// streamed once per call, so the only wins available are (a) keeping the
// column-major access pattern unit-stride, (b) 4-way unrolling the column
// loop so each pass over y applies four columns of A, and (c) splitting the
// row space across workers for large matrices. The NoTrans kernel
// parallelises over rows (each worker owns a contiguous slice of y); the
// Trans kernel parallelises over columns (each worker owns a slice of y of
// length n). Fast paths require unit increments; strided vectors fall back
// to the reference kernel.

// OptDgemv computes y = alpha*op(A)*x + beta*y. Semantics match RefDgemv.
func OptDgemv(trans Transpose, m, n int, alpha float64, a []float64, lda int, x []float64, incX int, beta float64, y []float64, incY int) {
	checkGemv(trans, m, n, lda, incX, incY)
	if incX != 1 || incY != 1 {
		RefDgemv(trans, m, n, alpha, a, lda, x, incX, beta, y, incY)
		return
	}
	lenY := lenGemvY(trans, m, n)
	if lenY == 0 {
		return
	}
	yv := y[:lenY]
	if beta == 0 {
		for i := range yv {
			yv[i] = 0
		}
	} else if beta != 1 {
		for i := range yv {
			yv[i] *= beta
		}
	}
	if alpha == 0 || lenGemvX(trans, m, n) == 0 {
		return
	}
	p := getPool()
	flops := 2 * int64(m) * int64(n)
	if isTrans(trans) {
		if p.Workers() == 1 || flops < parallelGrainFlops {
			gemvT64(m, n, alpha, a, lda, x, yv)
			return
		}
		p.For(n, func(_ int, r parallel.Range) {
			gemvT64(m, r.Len(), alpha, a[r.Lo*lda:], lda, x, yv[r.Lo:])
		})
		return
	}
	if p.Workers() == 1 || flops < parallelGrainFlops {
		gemvN64(m, n, alpha, a, lda, x, yv)
		return
	}
	p.For(m, func(_ int, r parallel.Range) {
		gemvN64(r.Len(), n, alpha, a[r.Lo:], lda, x, yv[r.Lo:r.Hi])
	})
}

// gemvN64 computes y += alpha*A*x for an m-by-n block with unit strides,
// four columns at a time.
func gemvN64(m, n int, alpha float64, a []float64, lda int, x, y []float64) {
	y = y[:m]
	j := 0
	for ; j+4 <= n; j += 4 {
		x0 := alpha * x[j]
		x1 := alpha * x[j+1]
		x2 := alpha * x[j+2]
		x3 := alpha * x[j+3]
		c0 := a[j*lda : j*lda+m]
		c1 := a[(j+1)*lda : (j+1)*lda+m]
		c2 := a[(j+2)*lda : (j+2)*lda+m]
		c3 := a[(j+3)*lda : (j+3)*lda+m]
		for i := 0; i < m; i++ {
			y[i] += x0*c0[i] + x1*c1[i] + x2*c2[i] + x3*c3[i]
		}
	}
	for ; j < n; j++ {
		xv := alpha * x[j]
		if xv == 0 {
			continue
		}
		col := a[j*lda : j*lda+m]
		for i := 0; i < m; i++ {
			y[i] += xv * col[i]
		}
	}
}

// gemvT64 computes y_j += alpha*dot(A[:,j], x) for n columns with unit
// strides, with 4-way unrolled dot products.
func gemvT64(m, n int, alpha float64, a []float64, lda int, x, y []float64) {
	x = x[:m]
	for j := 0; j < n; j++ {
		col := a[j*lda : j*lda+m]
		var s0, s1, s2, s3 float64
		i := 0
		for ; i+4 <= m; i += 4 {
			s0 += col[i] * x[i]
			s1 += col[i+1] * x[i+1]
			s2 += col[i+2] * x[i+2]
			s3 += col[i+3] * x[i+3]
		}
		sum := (s0 + s1) + (s2 + s3)
		for ; i < m; i++ {
			sum += col[i] * x[i]
		}
		y[j] += alpha * sum
	}
}

// OptSgemv computes y = alpha*op(A)*x + beta*y. Semantics match RefSgemv.
func OptSgemv(trans Transpose, m, n int, alpha float32, a []float32, lda int, x []float32, incX int, beta float32, y []float32, incY int) {
	checkGemv(trans, m, n, lda, incX, incY)
	if incX != 1 || incY != 1 {
		RefSgemv(trans, m, n, alpha, a, lda, x, incX, beta, y, incY)
		return
	}
	lenY := lenGemvY(trans, m, n)
	if lenY == 0 {
		return
	}
	yv := y[:lenY]
	if beta == 0 {
		for i := range yv {
			yv[i] = 0
		}
	} else if beta != 1 {
		for i := range yv {
			yv[i] *= beta
		}
	}
	if alpha == 0 || lenGemvX(trans, m, n) == 0 {
		return
	}
	p := getPool()
	flops := 2 * int64(m) * int64(n)
	if isTrans(trans) {
		if p.Workers() == 1 || flops < parallelGrainFlops {
			gemvT32(m, n, alpha, a, lda, x, yv)
			return
		}
		p.For(n, func(_ int, r parallel.Range) {
			gemvT32(m, r.Len(), alpha, a[r.Lo*lda:], lda, x, yv[r.Lo:])
		})
		return
	}
	if p.Workers() == 1 || flops < parallelGrainFlops {
		gemvN32(m, n, alpha, a, lda, x, yv)
		return
	}
	p.For(m, func(_ int, r parallel.Range) {
		gemvN32(r.Len(), n, alpha, a[r.Lo:], lda, x, yv[r.Lo:r.Hi])
	})
}

// gemvN32 computes y += alpha*A*x for an m-by-n block with unit strides.
func gemvN32(m, n int, alpha float32, a []float32, lda int, x, y []float32) {
	y = y[:m]
	j := 0
	for ; j+4 <= n; j += 4 {
		x0 := alpha * x[j]
		x1 := alpha * x[j+1]
		x2 := alpha * x[j+2]
		x3 := alpha * x[j+3]
		c0 := a[j*lda : j*lda+m]
		c1 := a[(j+1)*lda : (j+1)*lda+m]
		c2 := a[(j+2)*lda : (j+2)*lda+m]
		c3 := a[(j+3)*lda : (j+3)*lda+m]
		for i := 0; i < m; i++ {
			y[i] += x0*c0[i] + x1*c1[i] + x2*c2[i] + x3*c3[i]
		}
	}
	for ; j < n; j++ {
		xv := alpha * x[j]
		if xv == 0 {
			continue
		}
		col := a[j*lda : j*lda+m]
		for i := 0; i < m; i++ {
			y[i] += xv * col[i]
		}
	}
}

// gemvT32 computes y_j += alpha*dot(A[:,j], x) for n columns.
func gemvT32(m, n int, alpha float32, a []float32, lda int, x, y []float32) {
	x = x[:m]
	for j := 0; j < n; j++ {
		col := a[j*lda : j*lda+m]
		var s0, s1, s2, s3 float32
		i := 0
		for ; i+4 <= m; i += 4 {
			s0 += col[i] * x[i]
			s1 += col[i+1] * x[i+1]
			s2 += col[i+2] * x[i+2]
			s3 += col[i+3] * x[i+3]
		}
		sum := (s0 + s1) + (s2 + s3)
		for ; i < m; i++ {
			sum += col[i] * x[i]
		}
		y[j] += alpha * sum
	}
}
