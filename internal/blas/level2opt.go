package blas

import "repro/internal/parallel"

// Optimized Level-2 kernels beyond GEMV. GER and SYMV parallelise cleanly
// (columns of A, rows of y); TRMV and TRSV stay serial in their Opt form —
// the forward/backward substitution recurrence makes row-level parallelism
// a loss at BLAS-2 arithmetic intensities — so OptDtrsv/OptDtrmv simply
// dispatch to the reference kernels and exist for API completeness.

// OptDger computes the rank-1 update A += alpha*x*yᵀ, parallelised over
// column blocks of A. Semantics match RefDger.
func OptDger(m, n int, alpha float64, x []float64, incX int, y []float64, incY int, a []float64, lda int) {
	if m < 0 || n < 0 {
		panic("blas: negative ger dimension")
	}
	if lda < max(1, m) {
		panic("blas: ger lda too small")
	}
	if incX == 0 || incY == 0 {
		panic("blas: zero vector increment")
	}
	if m == 0 || n == 0 || alpha == 0 {
		return
	}
	p := getPool()
	if p.Workers() == 1 || int64(m)*int64(n) < parallelGrainFlops || incX != 1 {
		RefDger(m, n, alpha, x, incX, y, incY, a, lda)
		return
	}
	ky := vecStart(n, incY)
	p.For(n, func(_ int, r parallel.Range) {
		for j := r.Lo; j < r.Hi; j++ {
			yv := alpha * y[ky+j*incY]
			if yv == 0 {
				continue
			}
			col := a[j*lda : j*lda+m]
			for i := 0; i < m; i++ {
				col[i] += x[i] * yv
			}
		}
	})
}

// OptSger computes the rank-1 update A += alpha*x*yᵀ. Semantics match
// RefSger.
func OptSger(m, n int, alpha float32, x []float32, incX int, y []float32, incY int, a []float32, lda int) {
	if m < 0 || n < 0 {
		panic("blas: negative ger dimension")
	}
	if lda < max(1, m) {
		panic("blas: ger lda too small")
	}
	if incX == 0 || incY == 0 {
		panic("blas: zero vector increment")
	}
	if m == 0 || n == 0 || alpha == 0 {
		return
	}
	p := getPool()
	if p.Workers() == 1 || int64(m)*int64(n) < parallelGrainFlops || incX != 1 {
		RefSger(m, n, alpha, x, incX, y, incY, a, lda)
		return
	}
	ky := vecStart(n, incY)
	p.For(n, func(_ int, r parallel.Range) {
		for j := r.Lo; j < r.Hi; j++ {
			yv := alpha * y[ky+j*incY]
			if yv == 0 {
				continue
			}
			col := a[j*lda : j*lda+m]
			for i := 0; i < m; i++ {
				col[i] += x[i] * yv
			}
		}
	})
}

// OptDsymv computes y = alpha*A*x + beta*y for symmetric A (uplo triangle
// stored), parallelised over output rows with each worker reading the
// stored triangle only. Semantics match RefDsymv.
func OptDsymv(uplo Uplo, n int, alpha float64, a []float64, lda int, x []float64, incX int, beta float64, y []float64, incY int) {
	if uplo != Upper && uplo != Lower {
		panic("blas: invalid uplo")
	}
	if n < 0 {
		panic("blas: negative symv dimension")
	}
	if lda < max(1, n) {
		panic("blas: symv lda too small")
	}
	if incX == 0 || incY == 0 {
		panic("blas: zero vector increment")
	}
	if n == 0 {
		return
	}
	p := getPool()
	if p.Workers() == 1 || 2*int64(n)*int64(n) < parallelGrainFlops || incX != 1 || incY != 1 {
		RefDsymv(uplo, n, alpha, a, lda, x, incX, beta, y, incY)
		return
	}
	for i := 0; i < n; i++ {
		if beta == 0 {
			y[i] = 0
		} else if beta != 1 {
			y[i] *= beta
		}
	}
	if alpha == 0 {
		return
	}
	at := func(i, j int) float64 {
		if (uplo == Upper && i > j) || (uplo == Lower && i < j) {
			return a[j+i*lda]
		}
		return a[i+j*lda]
	}
	p.For(n, func(_ int, r parallel.Range) {
		for i := r.Lo; i < r.Hi; i++ {
			var sum float64
			for j := 0; j < n; j++ {
				sum += at(i, j) * x[j]
			}
			y[i] += alpha * sum
		}
	})
}

// OptSsymv computes y = alpha*A*x + beta*y for symmetric float32 A.
// Semantics match RefSsymv.
func OptSsymv(uplo Uplo, n int, alpha float32, a []float32, lda int, x []float32, incX int, beta float32, y []float32, incY int) {
	if uplo != Upper && uplo != Lower {
		panic("blas: invalid uplo")
	}
	if n < 0 {
		panic("blas: negative symv dimension")
	}
	if lda < max(1, n) {
		panic("blas: symv lda too small")
	}
	if incX == 0 || incY == 0 {
		panic("blas: zero vector increment")
	}
	if n == 0 {
		return
	}
	p := getPool()
	if p.Workers() == 1 || 2*int64(n)*int64(n) < parallelGrainFlops || incX != 1 || incY != 1 {
		RefSsymv(uplo, n, alpha, a, lda, x, incX, beta, y, incY)
		return
	}
	for i := 0; i < n; i++ {
		if beta == 0 {
			y[i] = 0
		} else if beta != 1 {
			y[i] *= beta
		}
	}
	if alpha == 0 {
		return
	}
	at := func(i, j int) float32 {
		if (uplo == Upper && i > j) || (uplo == Lower && i < j) {
			return a[j+i*lda]
		}
		return a[i+j*lda]
	}
	p.For(n, func(_ int, r parallel.Range) {
		for i := r.Lo; i < r.Hi; i++ {
			var sum float32
			for j := 0; j < n; j++ {
				sum += at(i, j) * x[j]
			}
			y[i] += alpha * sum
		}
	})
}

// OptDtrmv computes x = op(A)*x. The triangular recurrence defeats
// data-parallel decomposition at Level-2 intensity, so this dispatches to
// the reference kernel; it exists so callers can uniformly use Opt*.
func OptDtrmv(uplo Uplo, trans Transpose, diag Diag, n int, a []float64, lda int, x []float64, incX int) {
	RefDtrmv(uplo, trans, diag, n, a, lda, x, incX)
}

// OptDtrsv solves op(A)*x = b in place; see OptDtrmv for why it is serial.
func OptDtrsv(uplo Uplo, trans Transpose, diag Diag, n int, a []float64, lda int, x []float64, incX int) {
	RefDtrsv(uplo, trans, diag, n, a, lda, x, incX)
}
