package blas

import "repro/internal/parallel"

// Batched GEMM, the paper's first future-work item (§V): many small
// independent GEMMs issued as one call so the fixed per-call overhead is
// paid once and the batch can be spread across all workers even when each
// individual problem is too small to parallelise internally.

// DgemmBatchItem describes one GEMM of a float64 batch. All matrices are
// column-major; semantics per item match RefDgemm.
type DgemmBatchItem struct {
	TransA, TransB Transpose
	M, N, K        int
	Alpha          float64
	A              []float64
	Lda            int
	B              []float64
	Ldb            int
	Beta           float64
	C              []float64
	Ldc            int
}

// SgemmBatchItem describes one GEMM of a float32 batch.
type SgemmBatchItem struct {
	TransA, TransB Transpose
	M, N, K        int
	Alpha          float32
	A              []float32
	Lda            int
	B              []float32
	Ldb            int
	Beta           float32
	C              []float32
	Ldc            int
}

// DgemmBatched executes every GEMM in the batch. Items are validated before
// any is executed, so a malformed item panics without partial updates.
// Items are distributed across the worker pool one-at-a-time (guided), and
// each item is computed serially to avoid nested parallelism.
func DgemmBatched(items []DgemmBatchItem) {
	for i := range items {
		it := &items[i]
		checkGemm(it.TransA, it.TransB, it.M, it.N, it.K, it.Lda, it.Ldb, it.Ldc)
	}
	p := getPool()
	run := func(it *DgemmBatchItem) {
		if it.M == 0 || it.N == 0 {
			return
		}
		for j := 0; j < it.N; j++ {
			cj := it.C[j*it.Ldc : j*it.Ldc+it.M]
			if it.Beta == 0 {
				for i := range cj {
					cj[i] = 0
				}
			} else if it.Beta != 1 {
				for i := range cj {
					cj[i] *= it.Beta
				}
			}
		}
		if it.Alpha == 0 || it.K == 0 {
			return
		}
		gemmSerial64(it.TransA, it.TransB, it.M, it.N, it.K, it.Alpha, it.A, it.Lda, it.B, it.Ldb, it.C, it.Ldc)
	}
	if p.Workers() == 1 || len(items) == 1 {
		for i := range items {
			run(&items[i])
		}
		return
	}
	p.ForChunked(len(items), 1, func(_ int, r parallel.Range) {
		for i := r.Lo; i < r.Hi; i++ {
			run(&items[i])
		}
	})
}

// SgemmBatched executes every GEMM in the float32 batch; see DgemmBatched.
func SgemmBatched(items []SgemmBatchItem) {
	for i := range items {
		it := &items[i]
		checkGemm(it.TransA, it.TransB, it.M, it.N, it.K, it.Lda, it.Ldb, it.Ldc)
	}
	p := getPool()
	run := func(it *SgemmBatchItem) {
		if it.M == 0 || it.N == 0 {
			return
		}
		for j := 0; j < it.N; j++ {
			cj := it.C[j*it.Ldc : j*it.Ldc+it.M]
			if it.Beta == 0 {
				for i := range cj {
					cj[i] = 0
				}
			} else if it.Beta != 1 {
				for i := range cj {
					cj[i] *= it.Beta
				}
			}
		}
		if it.Alpha == 0 || it.K == 0 {
			return
		}
		gemmSerial32(it.TransA, it.TransB, it.M, it.N, it.K, it.Alpha, it.A, it.Lda, it.B, it.Ldb, it.C, it.Ldc)
	}
	if p.Workers() == 1 || len(items) == 1 {
		for i := range items {
			run(&items[i])
		}
		return
	}
	p.ForChunked(len(items), 1, func(_ int, r parallel.Range) {
		for i := r.Lo; i < r.Hi; i++ {
			run(&items[i])
		}
	})
}

// DgemmStridedBatched runs batchCount GEMMs of identical shape whose
// operands sit at fixed strides within contiguous buffers, mirroring
// cublasDgemmStridedBatched.
func DgemmStridedBatched(transA, transB Transpose, m, n, k int, alpha float64,
	a []float64, lda int, strideA int,
	b []float64, ldb int, strideB int,
	beta float64, c []float64, ldc int, strideC int, batchCount int) {
	checkGemm(transA, transB, m, n, k, lda, ldb, ldc)
	checkStridedBatch(strideA, strideB, strideC, batchCount)
	items := make([]DgemmBatchItem, batchCount)
	for i := 0; i < batchCount; i++ {
		items[i] = DgemmBatchItem{
			TransA: transA, TransB: transB, M: m, N: n, K: k,
			Alpha: alpha, A: a[i*strideA:], Lda: lda,
			B: b[i*strideB:], Ldb: ldb,
			Beta: beta, C: c[i*strideC:], Ldc: ldc,
		}
	}
	DgemmBatched(items)
}

// SgemmStridedBatched runs batchCount float32 GEMMs of identical shape at
// fixed strides; see DgemmStridedBatched.
func SgemmStridedBatched(transA, transB Transpose, m, n, k int, alpha float32,
	a []float32, lda int, strideA int,
	b []float32, ldb int, strideB int,
	beta float32, c []float32, ldc int, strideC int, batchCount int) {
	checkGemm(transA, transB, m, n, k, lda, ldb, ldc)
	checkStridedBatch(strideA, strideB, strideC, batchCount)
	items := make([]SgemmBatchItem, batchCount)
	for i := 0; i < batchCount; i++ {
		items[i] = SgemmBatchItem{
			TransA: transA, TransB: transB, M: m, N: n, K: k,
			Alpha: alpha, A: a[i*strideA:], Lda: lda,
			B: b[i*strideB:], Ldb: ldb,
			Beta: beta, C: c[i*strideC:], Ldc: ldc,
		}
	}
	SgemmBatched(items)
}
