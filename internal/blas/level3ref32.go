package blas

// Float32 Level-3 reference kernels beyond GEMM; see ref64.go for the
// semantic documentation of each.

// RefSsymm computes C = alpha*A*B + beta*C (Left) or C = alpha*B*A + beta*C
// (Right) for symmetric A.
func RefSsymm(side Side, uplo Uplo, m, n int, alpha float32, a []float32, lda int, b []float32, ldb int, beta float32, c []float32, ldc int) {
	if side != Left && side != Right {
		panic("blas: invalid side")
	}
	if uplo != Upper && uplo != Lower {
		panic("blas: invalid uplo")
	}
	if m < 0 || n < 0 {
		panic("blas: negative symm dimension")
	}
	na := m
	if side == Right {
		na = n
	}
	if lda < max(1, na) {
		panic("blas: symm lda too small")
	}
	if ldb < max(1, m) {
		panic("blas: symm ldb too small")
	}
	if ldc < max(1, m) {
		panic("blas: symm ldc too small")
	}
	if m == 0 || n == 0 {
		return
	}
	at := func(i, j int) float32 {
		if (uplo == Upper && i > j) || (uplo == Lower && i < j) {
			return a[j+i*lda]
		}
		return a[i+j*lda]
	}
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			var sum float32
			if side == Left {
				for l := 0; l < m; l++ {
					sum += at(i, l) * b[l+j*ldb]
				}
			} else {
				for l := 0; l < n; l++ {
					sum += b[i+l*ldb] * at(l, j)
				}
			}
			idx := i + j*ldc
			if beta == 0 {
				c[idx] = alpha * sum
			} else {
				c[idx] = alpha*sum + beta*c[idx]
			}
		}
	}
}

// RefSsyrk computes the uplo triangle of C = alpha*A*Aᵀ + beta*C (NoTrans)
// or C = alpha*Aᵀ*A + beta*C (Trans).
func RefSsyrk(uplo Uplo, trans Transpose, n, k int, alpha float32, a []float32, lda int, beta float32, c []float32, ldc int) {
	if uplo != Upper && uplo != Lower {
		panic("blas: invalid uplo")
	}
	if !trans.valid() {
		panic("blas: invalid transpose")
	}
	if n < 0 || k < 0 {
		panic("blas: negative syrk dimension")
	}
	rows := n
	if isTrans(trans) {
		rows = k
	}
	if lda < max(1, rows) {
		panic("blas: syrk lda too small")
	}
	if ldc < max(1, n) {
		panic("blas: syrk ldc too small")
	}
	if n == 0 {
		return
	}
	at := func(i, l int) float32 {
		if isTrans(trans) {
			return a[l+i*lda]
		}
		return a[i+l*lda]
	}
	for j := 0; j < n; j++ {
		iLo, iHi := 0, j+1
		if uplo == Lower {
			iLo, iHi = j, n
		}
		for i := iLo; i < iHi; i++ {
			var sum float32
			for l := 0; l < k; l++ {
				sum += at(i, l) * at(j, l)
			}
			idx := i + j*ldc
			if beta == 0 {
				c[idx] = alpha * sum
			} else {
				c[idx] = alpha*sum + beta*c[idx]
			}
		}
	}
}

// RefStrmm computes B = alpha*op(A)*B (Left) or B = alpha*B*op(A) (Right)
// for triangular A.
func RefStrmm(side Side, uplo Uplo, trans Transpose, diag Diag, m, n int, alpha float32, a []float32, lda int, b []float32, ldb int) {
	if side != Left && side != Right {
		panic("blas: invalid side")
	}
	if uplo != Upper && uplo != Lower {
		panic("blas: invalid uplo")
	}
	if !trans.valid() {
		panic("blas: invalid transpose")
	}
	if diag != Unit && diag != NonUnit {
		panic("blas: invalid diag")
	}
	if m < 0 || n < 0 {
		panic("blas: negative trmm dimension")
	}
	na := m
	if side == Right {
		na = n
	}
	if lda < max(1, na) {
		panic("blas: trmm lda too small")
	}
	if ldb < max(1, m) {
		panic("blas: trmm ldb too small")
	}
	if m == 0 || n == 0 {
		return
	}
	at := func(i, j int) float32 {
		if i == j && diag == Unit {
			return 1
		}
		lower := uplo == Lower
		if isTrans(trans) {
			i, j = j, i
		}
		if (lower && i < j) || (!lower && i > j) {
			return 0
		}
		return a[i+j*lda]
	}
	tmp := make([]float32, na)
	if side == Left {
		for j := 0; j < n; j++ {
			col := b[j*ldb : j*ldb+m]
			for i := 0; i < m; i++ {
				var sum float32
				for l := 0; l < m; l++ {
					v := at(i, l)
					if v != 0 {
						sum += v * col[l]
					}
				}
				tmp[i] = alpha * sum
			}
			copy(col, tmp[:m])
		}
		return
	}
	row := make([]float32, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			row[j] = b[i+j*ldb]
		}
		for j := 0; j < n; j++ {
			var sum float32
			for l := 0; l < n; l++ {
				v := at(l, j)
				if v != 0 {
					sum += row[l] * v
				}
			}
			tmp[j] = alpha * sum
		}
		for j := 0; j < n; j++ {
			b[i+j*ldb] = tmp[j]
		}
	}
}

// RefStrsm solves op(A)*X = alpha*B (Left) or X*op(A) = alpha*B (Right),
// overwriting B with X.
func RefStrsm(side Side, uplo Uplo, trans Transpose, diag Diag, m, n int, alpha float32, a []float32, lda int, b []float32, ldb int) {
	if side != Left && side != Right {
		panic("blas: invalid side")
	}
	if uplo != Upper && uplo != Lower {
		panic("blas: invalid uplo")
	}
	if !trans.valid() {
		panic("blas: invalid transpose")
	}
	if diag != Unit && diag != NonUnit {
		panic("blas: invalid diag")
	}
	if m < 0 || n < 0 {
		panic("blas: negative trsm dimension")
	}
	na := m
	if side == Right {
		na = n
	}
	if lda < max(1, na) {
		panic("blas: trsm lda too small")
	}
	if ldb < max(1, m) {
		panic("blas: trsm ldb too small")
	}
	if m == 0 || n == 0 {
		return
	}
	if alpha != 1 {
		for j := 0; j < n; j++ {
			col := b[j*ldb : j*ldb+m]
			for i := range col {
				col[i] *= alpha
			}
		}
	}
	if side == Left {
		for j := 0; j < n; j++ {
			RefStrsv(uplo, trans, diag, m, a, lda, b[j*ldb:j*ldb+m], 1)
		}
		return
	}
	tr := Trans
	if isTrans(trans) {
		tr = NoTrans
	}
	row := make([]float32, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			row[j] = b[i+j*ldb]
		}
		RefStrsv(uplo, tr, diag, n, a, lda, row, 1)
		for j := 0; j < n; j++ {
			b[i+j*ldb] = row[j]
		}
	}
}
