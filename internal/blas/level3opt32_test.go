package blas

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randTriangular32(r *rand.Rand, na int, uplo Uplo) []float32 {
	a := make([]float32, na*na)
	for j := 0; j < na; j++ {
		for i := 0; i < na; i++ {
			inTri := (uplo == Lower && i >= j) || (uplo == Upper && i <= j)
			switch {
			case i == j:
				a[i+j*na] = 2 + r.Float32()
			case inTri:
				a[i+j*na] = (r.Float32()*2 - 1) / float32(na)
			default:
				a[i+j*na] = 1e30
			}
		}
	}
	return a
}

func TestOptStrsmMatchesRef(t *testing.T) {
	for _, side := range []Side{Left, Right} {
		for _, uplo := range []Uplo{Upper, Lower} {
			for _, trans := range []Transpose{NoTrans, Trans} {
				f := func(seed int64) bool {
					r := rand.New(rand.NewSource(seed))
					m := 1 + r.Intn(140)
					n := 1 + r.Intn(140)
					na := m
					if side == Right {
						na = n
					}
					a := randTriangular32(r, na, uplo)
					b := randSlice32(r, m*n)
					bRef := append([]float32(nil), b...)
					bOpt := append([]float32(nil), b...)
					RefStrsm(side, uplo, trans, NonUnit, m, n, 1.5, a, na, bRef, m)
					OptStrsm(side, uplo, trans, NonUnit, m, n, 1.5, a, na, bOpt, m)
					return maxDiff32(bRef, bOpt) <= 1e-3
				}
				if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
					t.Fatalf("side=%c uplo=%c trans=%c: %v", side, uplo, trans, err)
				}
			}
		}
	}
}

func TestOptStrmmMatchesRef(t *testing.T) {
	for _, side := range []Side{Left, Right} {
		for _, uplo := range []Uplo{Upper, Lower} {
			for _, trans := range []Transpose{NoTrans, Trans} {
				f := func(seed int64) bool {
					r := rand.New(rand.NewSource(seed))
					m := 1 + r.Intn(140)
					n := 1 + r.Intn(140)
					na := m
					if side == Right {
						na = n
					}
					a := randTriangular32(r, na, uplo)
					b := randSlice32(r, m*n)
					bRef := append([]float32(nil), b...)
					bOpt := append([]float32(nil), b...)
					RefStrmm(side, uplo, trans, Unit, m, n, 0.5, a, na, bRef, m)
					OptStrmm(side, uplo, trans, Unit, m, n, 0.5, a, na, bOpt, m)
					return maxDiff32(bRef, bOpt) <= 1e-3
				}
				if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
					t.Fatalf("side=%c uplo=%c trans=%c: %v", side, uplo, trans, err)
				}
			}
		}
	}
}

func TestOptSsyrkMatchesRef(t *testing.T) {
	for _, uplo := range []Uplo{Upper, Lower} {
		for _, trans := range []Transpose{NoTrans, Trans} {
			f := func(seed int64) bool {
				r := rand.New(rand.NewSource(seed))
				n := 1 + r.Intn(150)
				k := 1 + r.Intn(40)
				rows := n
				if trans == Trans {
					rows = k
				}
				a := randSlice32(r, n*k)
				c := randSlice32(r, n*n)
				cRef := append([]float32(nil), c...)
				cOpt := append([]float32(nil), c...)
				RefSsyrk(uplo, trans, n, k, 1.25, a, rows, 0.5, cRef, n)
				OptSsyrk(uplo, trans, n, k, 1.25, a, rows, 0.5, cOpt, n)
				return maxDiff32(cRef, cOpt) <= 1e-3*float32Tol(k)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
				t.Fatalf("uplo=%c trans=%c: %v", uplo, trans, err)
			}
		}
	}
}

func float32Tol(k int) float64 { return float64(k + 1) }

func TestOptSsymmMatchesRef(t *testing.T) {
	for _, side := range []Side{Left, Right} {
		for _, uplo := range []Uplo{Upper, Lower} {
			f := func(seed int64) bool {
				r := rand.New(rand.NewSource(seed))
				m := 1 + r.Intn(150)
				n := 1 + r.Intn(150)
				na := m
				if side == Right {
					na = n
				}
				a := make([]float32, na*na)
				for j := 0; j < na; j++ {
					for i := 0; i < na; i++ {
						inTri := (uplo == Lower && i >= j) || (uplo == Upper && i <= j)
						if inTri {
							a[i+j*na] = r.Float32()*2 - 1
						} else {
							a[i+j*na] = 1e30
						}
					}
				}
				b := randSlice32(r, m*n)
				c := randSlice32(r, m*n)
				cRef := append([]float32(nil), c...)
				cOpt := append([]float32(nil), c...)
				RefSsymm(side, uplo, m, n, 1.5, a, na, b, m, 0.5, cRef, m)
				OptSsymm(side, uplo, m, n, 1.5, a, na, b, m, 0.5, cOpt, m)
				return maxDiff32(cRef, cOpt) <= 1e-3*float32Tol(na)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
				t.Fatalf("side=%c uplo=%c: %v", side, uplo, err)
			}
		}
	}
}

// RefS and RefD Level-3 kernels must agree on identical (exactly
// representable) inputs.
func TestLevel3PrecisionConsistency(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	n, k := 40, 12
	a32 := make([]float32, n*k)
	a64 := make([]float64, n*k)
	for i := range a32 {
		v := float32(r.Intn(7)) - 3 // small integers: exact in both types
		a32[i] = v
		a64[i] = float64(v)
	}
	c32 := make([]float32, n*n)
	c64 := make([]float64, n*n)
	RefSsyrk(Lower, NoTrans, n, k, 1, a32, n, 0, c32, n)
	RefDsyrk(Lower, NoTrans, n, k, 1, a64, n, 0, c64, n)
	for i := range c32 {
		if float64(c32[i]) != c64[i] { //blobvet:allow floatcompare -- inputs are small integers, exactly representable in both precisions
			t.Fatalf("syrk precision divergence at %d: %v vs %v", i, c32[i], c64[i])
		}
	}
}
