package blas

import "math"

// Givens rotation generation, completing the Level-1 rotation family
// (rot itself lives in ref64.go/ref32.go). The BLAS drotg convention is
// followed: given (a, b), compute c, s with
//
//	[ c  s] [a]   [r]
//	[-s  c] [b] = [0]
//
// returning r (overwriting a's slot in the classic interface) and the
// reconstruction scalar z: z = s if |a| > |b|, z = 1/c if c != 0, else 1.

// RefDrotg computes the Givens rotation annihilating b against a.
func RefDrotg(a, b float64) (c, s, r, z float64) {
	if b == 0 {
		if a == 0 {
			return 1, 0, 0, 0
		}
		return 1, 0, a, 0
	}
	if a == 0 {
		return 0, 1, b, 1
	}
	// Stable scaling, as in the reference BLAS.
	roe := b
	if math.Abs(a) > math.Abs(b) {
		roe = a
	}
	scale := math.Abs(a) + math.Abs(b)
	r = scale * math.Sqrt((a/scale)*(a/scale)+(b/scale)*(b/scale))
	if roe < 0 {
		r = -r
	}
	c = a / r
	s = b / r
	z = 1.0
	if math.Abs(a) > math.Abs(b) {
		z = s
	} else if c != 0 {
		z = 1 / c
	}
	return c, s, r, z
}

// RefSrotg is the float32 Givens rotation generation (float64 internal
// arithmetic, like reference SROTG builds).
func RefSrotg(a, b float32) (c, s, r, z float32) {
	dc, ds, dr, dz := RefDrotg(float64(a), float64(b))
	return float32(dc), float32(ds), float32(dr), float32(dz)
}
