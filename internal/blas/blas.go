// Package blas implements the Basic Linear Algebra Subprograms used by
// GPU-BLOB-Go, in pure Go, for float32 and float64.
//
// Two implementations of every kernel are provided:
//
//   - Ref* kernels: straightforward triple-loop references. They define the
//     semantics and serve as the comparison oracle in tests.
//   - Opt* kernels: cache-blocked, register-tiled and (for large problems)
//     multi-threaded implementations in the style of BLIS/GotoBLAS. These are
//     the kernels actually executed by the benchmark's simulated devices so
//     that checksum validation exercises real arithmetic.
//
// All matrices are column-major (§III-A of the paper): element (i,j) of an
// m-by-n matrix A with leading dimension lda lives at a[i+j*lda]. GEMM and
// GEMV additionally honour the paper's Beta=0 contract: when beta == 0 the
// output operand is written, never read, matching the optimisation the paper
// observed in all five vendor libraries (Table I).
package blas

import "fmt"

// Transpose selects op(X) for kernels taking transposition arguments.
type Transpose byte

// Transpose values. ConjTrans is accepted and treated as Trans for the real
// types implemented here.
const (
	NoTrans   Transpose = 'N'
	Trans     Transpose = 'T'
	ConjTrans Transpose = 'C'
)

// Uplo selects which triangle of a symmetric or triangular matrix is stored.
type Uplo byte

// Uplo values.
const (
	Upper Uplo = 'U'
	Lower Uplo = 'L'
)

// Diag indicates whether a triangular matrix has a unit diagonal.
type Diag byte

// Diag values.
const (
	NonUnit Diag = 'N'
	Unit    Diag = 'U'
)

// Side selects the side a symmetric/triangular operand multiplies from.
type Side byte

// Side values.
const (
	Left  Side = 'L'
	Right Side = 'R'
)

func (t Transpose) valid() bool { return t == NoTrans || t == Trans || t == ConjTrans }

// isTrans reports whether t denotes any transposition.
func isTrans(t Transpose) bool { return t == Trans || t == ConjTrans }

func checkGemm(transA, transB Transpose, m, n, k, lda, ldb, ldc int) {
	if !transA.valid() || !transB.valid() {
		panic(fmt.Sprintf("blas: invalid transpose (%c,%c)", transA, transB))
	}
	if m < 0 || n < 0 || k < 0 {
		panic(fmt.Sprintf("blas: negative gemm dimension m=%d n=%d k=%d", m, n, k))
	}
	rowsA, rowsB := m, k
	if isTrans(transA) {
		rowsA = k
	}
	if isTrans(transB) {
		rowsB = n
	}
	if lda < max(1, rowsA) {
		panic(fmt.Sprintf("blas: lda=%d too small for %d rows", lda, rowsA))
	}
	if ldb < max(1, rowsB) {
		panic(fmt.Sprintf("blas: ldb=%d too small for %d rows", ldb, rowsB))
	}
	if ldc < max(1, m) {
		panic(fmt.Sprintf("blas: ldc=%d too small for %d rows", ldc, m))
	}
}

// checkStridedBatch validates the batch geometry of a strided-batched GEMM
// before any operand buffer is sliced: negative strides or counts would
// otherwise surface as a raw slice-bounds panic (or, with aliasing strides,
// silently overlapping batch items) deep inside the batch loop.
func checkStridedBatch(strideA, strideB, strideC, batchCount int) {
	if batchCount < 0 {
		panic(fmt.Sprintf("blas: negative batchCount %d", batchCount))
	}
	if strideA < 0 || strideB < 0 || strideC < 0 {
		panic(fmt.Sprintf("blas: negative batch stride (%d,%d,%d)", strideA, strideB, strideC))
	}
}

func checkGemv(trans Transpose, m, n, lda, incX, incY int) {
	if !trans.valid() {
		panic(fmt.Sprintf("blas: invalid transpose %c", trans))
	}
	if m < 0 || n < 0 {
		panic(fmt.Sprintf("blas: negative gemv dimension m=%d n=%d", m, n))
	}
	if lda < max(1, m) {
		panic(fmt.Sprintf("blas: lda=%d too small for %d rows", lda, m))
	}
	if incX == 0 || incY == 0 {
		panic("blas: zero vector increment")
	}
}

// lenGemvX returns the logical length of x for a gemv with the given
// transpose setting.
func lenGemvX(trans Transpose, m, n int) int {
	if isTrans(trans) {
		return m
	}
	return n
}

// lenGemvY returns the logical length of y for a gemv with the given
// transpose setting.
func lenGemvY(trans Transpose, m, n int) int {
	if isTrans(trans) {
		return n
	}
	return m
}

// vecStart returns the index of logical element 0 for a strided vector of n
// logical elements: BLAS convention places element 0 at the end of the
// buffer when inc < 0.
func vecStart(n, inc int) int {
	if inc < 0 {
		return (n - 1) * -inc
	}
	return 0
}
