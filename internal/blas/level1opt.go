package blas

import (
	"math"

	"repro/internal/parallel"
)

// Optimized Level-1 kernels: 4-way unrolled serial loops, with worker-pool
// parallelism for long vectors. Reductions combine per-worker partials
// deterministically (in worker order), so results are reproducible for a
// fixed thread count. Strided calls fall back to the reference kernels.

// level1ParallelMin is the vector length above which forking workers pays.
const level1ParallelMin = 1 << 16

// OptDdot returns xᵀy over n elements. Semantics match RefDdot.
func OptDdot(n int, x []float64, incX int, y []float64, incY int) float64 {
	if n <= 0 {
		return 0
	}
	if incX != 1 || incY != 1 {
		return RefDdot(n, x, incX, y, incY)
	}
	p := getPool()
	if p.Workers() == 1 || n < level1ParallelMin {
		return dotSerial64(x[:n], y[:n])
	}
	partials := make([]float64, p.Workers())
	p.For(n, func(w int, r parallel.Range) {
		partials[w] = dotSerial64(x[r.Lo:r.Hi], y[r.Lo:r.Hi])
	})
	var sum float64
	for _, v := range partials {
		sum += v
	}
	return sum
}

func dotSerial64(x, y []float64) float64 {
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(x); i += 4 {
		s0 += x[i] * y[i]
		s1 += x[i+1] * y[i+1]
		s2 += x[i+2] * y[i+2]
		s3 += x[i+3] * y[i+3]
	}
	sum := (s0 + s1) + (s2 + s3)
	for ; i < len(x); i++ {
		sum += x[i] * y[i]
	}
	return sum
}

// OptDaxpy computes y += alpha*x over n elements. Semantics match RefDaxpy.
func OptDaxpy(n int, alpha float64, x []float64, incX int, y []float64, incY int) {
	if n <= 0 || alpha == 0 {
		return
	}
	if incX != 1 || incY != 1 {
		RefDaxpy(n, alpha, x, incX, y, incY)
		return
	}
	p := getPool()
	if p.Workers() == 1 || n < level1ParallelMin {
		axpySerial64(alpha, x[:n], y[:n])
		return
	}
	p.For(n, func(_ int, r parallel.Range) {
		axpySerial64(alpha, x[r.Lo:r.Hi], y[r.Lo:r.Hi])
	})
}

func axpySerial64(alpha float64, x, y []float64) {
	i := 0
	for ; i+4 <= len(x); i += 4 {
		y[i] += alpha * x[i]
		y[i+1] += alpha * x[i+1]
		y[i+2] += alpha * x[i+2]
		y[i+3] += alpha * x[i+3]
	}
	for ; i < len(x); i++ {
		y[i] += alpha * x[i]
	}
}

// OptDscal computes x *= alpha over n elements. Semantics match RefDscal.
func OptDscal(n int, alpha float64, x []float64, incX int) {
	if n <= 0 || incX <= 0 {
		return
	}
	if incX != 1 {
		RefDscal(n, alpha, x, incX)
		return
	}
	p := getPool()
	if p.Workers() == 1 || n < level1ParallelMin {
		for i := range x[:n] {
			x[i] *= alpha
		}
		return
	}
	p.For(n, func(_ int, r parallel.Range) {
		seg := x[r.Lo:r.Hi]
		for i := range seg {
			seg[i] *= alpha
		}
	})
}

// OptDasum returns the sum of absolute values of x. Semantics match
// RefDasum.
func OptDasum(n int, x []float64, incX int) float64 {
	if n <= 0 || incX <= 0 {
		return 0
	}
	if incX != 1 {
		return RefDasum(n, x, incX)
	}
	p := getPool()
	if p.Workers() == 1 || n < level1ParallelMin {
		return asumSerial64(x[:n])
	}
	partials := make([]float64, p.Workers())
	p.For(n, func(w int, r parallel.Range) {
		partials[w] = asumSerial64(x[r.Lo:r.Hi])
	})
	var sum float64
	for _, v := range partials {
		sum += v
	}
	return sum
}

func asumSerial64(x []float64) float64 {
	var sum float64
	for _, v := range x {
		sum += math.Abs(v)
	}
	return sum
}

// OptDnrm2 returns the Euclidean norm of x. Long unit-stride vectors use a
// parallel two-pass scheme (max |x|, then a scaled sum of squares), which
// keeps the overflow/underflow guarantees of the reference kernel.
func OptDnrm2(n int, x []float64, incX int) float64 {
	if n <= 0 || incX <= 0 {
		return 0
	}
	if incX != 1 {
		return RefDnrm2(n, x, incX)
	}
	p := getPool()
	if p.Workers() == 1 || n < level1ParallelMin {
		return RefDnrm2(n, x, 1)
	}
	// Pass 1: the scale.
	maxs := make([]float64, p.Workers())
	p.For(n, func(w int, r parallel.Range) {
		m := 0.0
		for _, v := range x[r.Lo:r.Hi] {
			if a := math.Abs(v); a > m {
				m = a
			}
		}
		maxs[w] = m
	})
	scale := 0.0
	for _, m := range maxs {
		if m > scale {
			scale = m
		}
	}
	if scale == 0 {
		return 0
	}
	// Pass 2: sum of squares of x/scale.
	partials := make([]float64, p.Workers())
	p.For(n, func(w int, r parallel.Range) {
		var s float64
		for _, v := range x[r.Lo:r.Hi] {
			t := v / scale
			s += t * t
		}
		partials[w] = s
	})
	var ssq float64
	for _, v := range partials {
		ssq += v
	}
	return scale * math.Sqrt(ssq)
}

// OptIdamax returns the index of the element with the largest absolute
// value (lowest index on ties), or -1 when n <= 0. Semantics match
// RefIdamax.
func OptIdamax(n int, x []float64, incX int) int {
	if n <= 0 || incX <= 0 {
		return -1
	}
	if incX != 1 {
		return RefIdamax(n, x, incX)
	}
	p := getPool()
	if p.Workers() == 1 || n < level1ParallelMin {
		return RefIdamax(n, x, 1)
	}
	type best struct {
		val float64
		idx int
	}
	bests := make([]best, p.Workers())
	for i := range bests {
		bests[i].idx = -1
	}
	p.For(n, func(w int, r parallel.Range) {
		b := best{val: -1, idx: -1}
		for i := r.Lo; i < r.Hi; i++ {
			if v := math.Abs(x[i]); v > b.val {
				b = best{val: v, idx: i}
			}
		}
		bests[w] = b
	})
	out := best{val: -1, idx: -1}
	for _, b := range bests {
		// Strictly greater keeps the lowest index on ties, because worker
		// ranges ascend with the worker id.
		if b.idx >= 0 && b.val > out.val {
			out = b
		}
	}
	return out.idx
}
