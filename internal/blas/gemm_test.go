package blas

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randSlice64(r *rand.Rand, n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = r.Float64()*2 - 1
	}
	return s
}

func randSlice32(r *rand.Rand, n int) []float32 {
	s := make([]float32, n)
	for i := range s {
		s[i] = r.Float32()*2 - 1
	}
	return s
}

func maxDiff64(a, b []float64) float64 {
	var m float64
	for i := range a {
		d := math.Abs(a[i] - b[i])
		if d > m {
			m = d
		}
	}
	return m
}

func maxDiff32(a, b []float32) float64 {
	var m float64
	for i := range a {
		d := math.Abs(float64(a[i]) - float64(b[i]))
		if d > m {
			m = d
		}
	}
	return m
}

// tolGemm64 scales the comparison tolerance with the length of the reduction.
func tolGemm64(k int) float64 { return 1e-12 * float64(k+1) }

func tolGemm32(k int) float64 { return 2e-5 * float64(k+1) }

func TestOptDgemmMatchesRef(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	shapes := [][3]int{
		{1, 1, 1}, {2, 3, 4}, {4, 4, 4}, {5, 7, 3}, {8, 8, 8},
		{13, 17, 19}, {32, 32, 32}, {33, 31, 29}, {64, 1, 64},
		{1, 64, 64}, {64, 64, 1}, {100, 3, 200}, {3, 100, 200},
		{129, 130, 131}, {200, 200, 16}, {16, 16, 300},
	}
	trs := []Transpose{NoTrans, Trans}
	coeffs := [][2]float64{{1, 0}, {1, 1}, {2.5, -0.5}, {0, 2}, {-1, 0.25}}
	for _, sh := range shapes {
		m, n, k := sh[0], sh[1], sh[2]
		for _, ta := range trs {
			for _, tb := range trs {
				for _, ab := range coeffs {
					alpha, beta := ab[0], ab[1]
					lda, ldb, ldc := m+2, k+1, m+3
					if ta == Trans {
						lda = k + 2
					}
					if tb == Trans {
						ldb = n + 1
					}
					a := randSlice64(r, lda*max(k, m))
					b := randSlice64(r, ldb*max(n, k))
					c := randSlice64(r, ldc*n)
					cRef := append([]float64(nil), c...)
					cOpt := append([]float64(nil), c...)
					RefDgemm(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, cRef, ldc)
					OptDgemm(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, cOpt, ldc)
					if d := maxDiff64(cRef, cOpt); d > tolGemm64(k) {
						t.Fatalf("dgemm %dx%dx%d ta=%c tb=%c alpha=%v beta=%v: max diff %g", m, n, k, ta, tb, alpha, beta, d)
					}
				}
			}
		}
	}
}

func TestOptSgemmMatchesRef(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	shapes := [][3]int{
		{1, 1, 1}, {3, 5, 7}, {8, 8, 8}, {9, 10, 11}, {16, 4, 64},
		{64, 64, 64}, {65, 63, 62}, {1, 128, 32}, {128, 1, 32},
		{257, 33, 12}, {40, 300, 5},
	}
	trs := []Transpose{NoTrans, Trans}
	for _, sh := range shapes {
		m, n, k := sh[0], sh[1], sh[2]
		for _, ta := range trs {
			for _, tb := range trs {
				lda, ldb, ldc := m, k, m
				if ta == Trans {
					lda = k
				}
				if tb == Trans {
					ldb = n
				}
				a := randSlice32(r, lda*max(k, m))
				b := randSlice32(r, ldb*max(n, k))
				c := randSlice32(r, ldc*n)
				cRef := append([]float32(nil), c...)
				cOpt := append([]float32(nil), c...)
				RefSgemm(ta, tb, m, n, k, 1.5, a, lda, b, ldb, 0.5, cRef, ldc)
				OptSgemm(ta, tb, m, n, k, 1.5, a, lda, b, ldb, 0.5, cOpt, ldc)
				if d := maxDiff32(cRef, cOpt); d > tolGemm32(k) {
					t.Fatalf("sgemm %dx%dx%d ta=%c tb=%c: max diff %g", m, n, k, ta, tb, d)
				}
			}
		}
	}
}

// Beta == 0 must write C without reading it, so NaN-poisoned output buffers
// must come out clean (the paper's Table I optimisation contract).
func TestGemmBetaZeroIgnoresC(t *testing.T) {
	m, n, k := 17, 13, 9
	r := rand.New(rand.NewSource(3))
	a64 := randSlice64(r, m*k)
	b64 := randSlice64(r, k*n)
	c64 := make([]float64, m*n)
	for i := range c64 {
		c64[i] = math.NaN()
	}
	for _, f := range []func(){
		func() { RefDgemm(NoTrans, NoTrans, m, n, k, 2, a64, m, b64, k, 0, c64, m) },
		func() { OptDgemm(NoTrans, NoTrans, m, n, k, 2, a64, m, b64, k, 0, c64, m) },
	} {
		for i := range c64 {
			c64[i] = math.NaN()
		}
		f()
		for i, v := range c64 {
			if math.IsNaN(v) {
				t.Fatalf("beta=0 read C at %d", i)
			}
		}
	}
	a32 := randSlice32(r, m*k)
	b32 := randSlice32(r, k*n)
	c32 := make([]float32, m*n)
	for _, f := range []func(){
		func() { RefSgemm(NoTrans, NoTrans, m, n, k, 2, a32, m, b32, k, 0, c32, m) },
		func() { OptSgemm(NoTrans, NoTrans, m, n, k, 2, a32, m, b32, k, 0, c32, m) },
	} {
		for i := range c32 {
			c32[i] = float32(math.NaN())
		}
		f()
		for i, v := range c32 {
			if math.IsNaN(float64(v)) {
				t.Fatalf("sgemm beta=0 read C at %d", i)
			}
		}
	}
}

func TestGemmAlphaZeroOnlyScalesC(t *testing.T) {
	m, n, k := 11, 7, 5
	r := rand.New(rand.NewSource(4))
	a := randSlice64(r, m*k)
	b := randSlice64(r, k*n)
	c := randSlice64(r, m*n)
	want := make([]float64, len(c))
	for i := range c {
		want[i] = 3 * c[i]
	}
	got := append([]float64(nil), c...)
	OptDgemm(NoTrans, NoTrans, m, n, k, 0, a, m, b, k, 3, got, m)
	if d := maxDiff64(want, got); d > 1e-15 {
		t.Fatalf("alpha=0 beta=3 mismatch: %g", d)
	}
}

func TestGemmZeroDims(t *testing.T) {
	a := []float64{1}
	b := []float64{1}
	c := []float64{42}
	// m == 0 and n == 0 are no-ops (C untouched in the n==0 case because no
	// columns exist; in the m==0 case C has no rows).
	OptDgemm(NoTrans, NoTrans, 0, 0, 0, 1, a, 1, b, 1, 0, c, 1)
	if c[0] != 42 { //blobvet:allow floatcompare -- poison value: zero-dim GEMM must leave C bit-identical
		t.Fatalf("zero-dim gemm touched C: %v", c[0])
	}
	// k == 0 with beta=0 must clear C.
	OptDgemm(NoTrans, NoTrans, 1, 1, 0, 1, a, 1, b, 1, 0, c, 1)
	if c[0] != 0 {
		t.Fatalf("k=0 beta=0 should zero C, got %v", c[0])
	}
}

func TestGemmPanicsOnBadArgs(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	a := make([]float64, 16)
	expectPanic("neg m", func() { RefDgemm(NoTrans, NoTrans, -1, 2, 2, 1, a, 2, a, 2, 0, a, 2) })
	expectPanic("bad transA", func() { RefDgemm('X', NoTrans, 2, 2, 2, 1, a, 2, a, 2, 0, a, 2) })
	expectPanic("small lda", func() { RefDgemm(NoTrans, NoTrans, 4, 2, 2, 1, a, 2, a, 2, 0, a, 4) })
	expectPanic("small ldc", func() { RefDgemm(NoTrans, NoTrans, 4, 2, 2, 1, a, 4, a, 2, 0, a, 2) })
}

// Property: gemm is linear in alpha.
func TestDgemmAlphaLinearity(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		m, n, k := 1+rr.Intn(24), 1+rr.Intn(24), 1+rr.Intn(24)
		a := randSlice64(r, m*k)
		b := randSlice64(r, k*n)
		alpha := rr.Float64()*4 - 2
		c1 := make([]float64, m*n)
		c2 := make([]float64, m*n)
		OptDgemm(NoTrans, NoTrans, m, n, k, alpha, a, m, b, k, 0, c1, m)
		OptDgemm(NoTrans, NoTrans, m, n, k, 1, a, m, b, k, 0, c2, m)
		for i := range c2 {
			c2[i] *= alpha
		}
		return maxDiff64(c1, c2) <= tolGemm64(k)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: (A*B)ᵀ == Bᵀ*Aᵀ.
func TestDgemmTransposeIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		m, n, k := 1+rr.Intn(20), 1+rr.Intn(20), 1+rr.Intn(20)
		a := randSlice64(rr, m*k)
		b := randSlice64(rr, k*n)
		c := make([]float64, m*n)  // C = A*B, m x n
		ct := make([]float64, n*m) // Cт = Bᵀ*Aᵀ, n x m
		OptDgemm(NoTrans, NoTrans, m, n, k, 1, a, m, b, k, 0, c, m)
		OptDgemm(Trans, Trans, n, m, k, 1, b, k, a, m, 0, ct, n)
		for j := 0; j < n; j++ {
			for i := 0; i < m; i++ {
				if math.Abs(c[i+j*m]-ct[j+i*n]) > tolGemm64(k) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: splitting K into two accumulating gemms matches a single gemm.
func TestDgemmKSplitAssociativity(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		m, n := 1+rr.Intn(16), 1+rr.Intn(16)
		k := 2 + rr.Intn(30)
		k1 := 1 + rr.Intn(k-1)
		a := randSlice64(rr, m*k)
		b := randSlice64(rr, k*n)
		whole := make([]float64, m*n)
		split := make([]float64, m*n)
		OptDgemm(NoTrans, NoTrans, m, n, k, 1, a, m, b, k, 0, whole, m)
		OptDgemm(NoTrans, NoTrans, m, n, k1, 1, a, m, b, k, 0, split, m)
		OptDgemm(NoTrans, NoTrans, m, n, k-k1, 1, a[k1*m:], m, b[k1:], k, 1, split, m)
		return maxDiff64(whole, split) <= tolGemm64(k)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGemmSingleThreadMatchesParallel(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	m, n, k := 200, 150, 64
	a := randSlice64(r, m*k)
	b := randSlice64(r, k*n)
	c1 := make([]float64, m*n)
	c2 := make([]float64, m*n)
	old := Threads()
	defer SetThreads(old)
	SetThreads(1)
	OptDgemm(NoTrans, NoTrans, m, n, k, 1, a, m, b, k, 0, c1, m)
	SetThreads(8)
	OptDgemm(NoTrans, NoTrans, m, n, k, 1, a, m, b, k, 0, c2, m)
	if d := maxDiff64(c1, c2); d > tolGemm64(k) {
		t.Fatalf("thread-count changed result: %g", d)
	}
}

func TestGemmSkinnyShapes(t *testing.T) {
	// The paper's non-square problem types stress extreme aspect ratios;
	// check a few representative ones against the reference.
	r := rand.New(rand.NewSource(7))
	shapes := [][3]int{
		{256, 256, 16 * 256}, // M=N, K=16M
		{32, 32, 2048},       // M=N=32, large K
		{16 * 128, 128, 128}, // M=16K, K=N
		{2048, 2048, 32},     // M=N, K=32
		{1, 4096, 1},
	}
	for _, sh := range shapes {
		m, n, k := sh[0], sh[1], sh[2]
		a := randSlice64(r, m*k)
		b := randSlice64(r, k*n)
		cRef := make([]float64, m*n)
		cOpt := make([]float64, m*n)
		RefDgemm(NoTrans, NoTrans, m, n, k, 1, a, m, b, k, 0, cRef, m)
		OptDgemm(NoTrans, NoTrans, m, n, k, 1, a, m, b, k, 0, cOpt, m)
		if d := maxDiff64(cRef, cOpt); d > tolGemm64(k) {
			t.Fatalf("skinny %v: max diff %g", sh, d)
		}
	}
}
