package blas

import "repro/internal/parallel"

// Optimized float64 GEMM in the GotoBLAS/BLIS style:
//
//	for jc in N by nc64:                 (parallelised across workers)
//	  for pc in K by kc64:   pack B(pc,jc) into bPack (kc x nc, NR-panels)
//	    for ic in M by mc64: pack A(ic,pc) into aPack (mc x kc, MR-panels)
//	      for jr in nc by nr64, ir in mc by mr64:  4x4 microkernel
//
// Packing rearranges panels so the microkernel streams both operands
// contiguously, and absorbs transposition: packing op(A) and op(B) makes the
// inner loops transpose-free. Partial edge tiles are zero-padded in the
// packed buffers, so the microkernel is branch-free; stores clip to C.
const (
	mc64 = 128
	kc64 = 256
	nc64 = 1024
	mr64 = 4
	nr64 = 4
)

// OptDgemm computes C = alpha*op(A)*op(B) + beta*C with cache blocking and
// multi-threading. Semantics match RefDgemm exactly.
func OptDgemm(transA, transB Transpose, m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	checkGemm(transA, transB, m, n, k, lda, ldb, ldc)
	if m == 0 || n == 0 {
		return
	}
	// beta pass over C.
	for j := 0; j < n; j++ {
		cj := c[j*ldc : j*ldc+m]
		if beta == 0 {
			for i := range cj {
				cj[i] = 0
			}
		} else if beta != 1 {
			for i := range cj {
				cj[i] *= beta
			}
		}
	}
	if alpha == 0 || k == 0 {
		return
	}
	p := getPool()
	flops := 2 * int64(m) * int64(n) * int64(k)
	if p.Workers() == 1 || flops < parallelGrainFlops {
		gemmSerial64(transA, transB, m, n, k, alpha, a, lda, b, ldb, c, ldc)
		return
	}
	// Split the larger output dimension across workers; each worker runs the
	// full serial blocked algorithm on its slice of C.
	if n >= m {
		p.For(n, func(_ int, r parallel.Range) {
			bOff, cOff := r.Lo*ldb, r.Lo*ldc
			if isTrans(transB) {
				bOff = r.Lo
			}
			gemmSerial64(transA, transB, m, r.Len(), k, alpha, a, lda, b[bOff:], ldb, c[cOff:], ldc)
		})
		return
	}
	p.For(m, func(_ int, r parallel.Range) {
		aOff, cOff := r.Lo, r.Lo
		if isTrans(transA) {
			aOff = r.Lo * lda
		}
		gemmSerial64(transA, transB, r.Len(), n, k, alpha, a[aOff:], lda, b, ldb, c[cOff:], ldc)
	})
}

// gemmSerial64 performs the packed, blocked update C += alpha*op(A)*op(B)
// on a single thread. C must already hold beta*C.
func gemmSerial64(transA, transB Transpose, m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	// Pack buffers sized to the actual block extents (padded to whole
	// micro-panels), so small and batched GEMMs don't allocate full-size
	// panels.
	mcMax, kcMax, ncMax := min(mc64, m), min(kc64, k), min(nc64, n)
	aPack := make([]float64, (mcMax+mr64-1)/mr64*mr64*kcMax)
	bPack := make([]float64, (ncMax+nr64-1)/nr64*nr64*kcMax)
	var acc [mr64 * nr64]float64
	for jc := 0; jc < n; jc += nc64 {
		nc := min(nc64, n-jc)
		for pc := 0; pc < k; pc += kc64 {
			kc := min(kc64, k-pc)
			packB64(transB, b, ldb, pc, jc, kc, nc, bPack)
			for ic := 0; ic < m; ic += mc64 {
				mc := min(mc64, m-ic)
				packA64(transA, a, lda, ic, pc, mc, kc, aPack)
				nPanels := (nc + nr64 - 1) / nr64
				mPanels := (mc + mr64 - 1) / mr64
				for jp := 0; jp < nPanels; jp++ {
					bp := bPack[jp*kc*nr64 : (jp+1)*kc*nr64]
					jr := jp * nr64
					njr := min(nr64, nc-jr)
					for ip := 0; ip < mPanels; ip++ {
						ap := aPack[ip*kc*mr64 : (ip+1)*kc*mr64]
						microKernel64(kc, ap, bp, &acc)
						ir := ip * mr64
						mir := min(mr64, mc-ir)
						// Accumulate alpha*acc into C, clipping the tile.
						for jj := 0; jj < njr; jj++ {
							ccol := c[(jc+jr+jj)*ldc+ic+ir : (jc+jr+jj)*ldc+ic+ir+mir]
							for ii := 0; ii < mir; ii++ {
								ccol[ii] += alpha * acc[ii*nr64+jj]
							}
						}
					}
				}
			}
		}
	}
}

// microKernel64 computes acc = ap * bp for one mr x nr tile, where ap holds
// kc rows of an MR-wide packed panel and bp kc rows of an NR-wide panel.
//
//blobvet:hotpath
func microKernel64(kc int, ap, bp []float64, acc *[mr64 * nr64]float64) {
	var c00, c01, c02, c03 float64
	var c10, c11, c12, c13 float64
	var c20, c21, c22, c23 float64
	var c30, c31, c32, c33 float64
	for l := 0; l < kc; l++ {
		a0, a1, a2, a3 := ap[l*mr64], ap[l*mr64+1], ap[l*mr64+2], ap[l*mr64+3]
		b0, b1, b2, b3 := bp[l*nr64], bp[l*nr64+1], bp[l*nr64+2], bp[l*nr64+3]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		c20 += a2 * b0
		c21 += a2 * b1
		c22 += a2 * b2
		c23 += a2 * b3
		c30 += a3 * b0
		c31 += a3 * b1
		c32 += a3 * b2
		c33 += a3 * b3
	}
	acc[0], acc[1], acc[2], acc[3] = c00, c01, c02, c03
	acc[4], acc[5], acc[6], acc[7] = c10, c11, c12, c13
	acc[8], acc[9], acc[10], acc[11] = c20, c21, c22, c23
	acc[12], acc[13], acc[14], acc[15] = c30, c31, c32, c33
}

// packA64 packs the mc x kc block of op(A) starting at logical (ic, pc) into
// MR-row panels: panel ip holds rows [ip*MR, ip*MR+MR) stored row-major
// within the panel ((l, ii) -> ap[ip*kc*MR + l*MR + ii]). Rows beyond mc pad
// with zeros.
//
//blobvet:hotpath
func packA64(transA Transpose, a []float64, lda, ic, pc, mc, kc int, ap []float64) {
	mPanels := (mc + mr64 - 1) / mr64
	for ipn := 0; ipn < mPanels; ipn++ {
		base := ipn * kc * mr64
		ir := ipn * mr64
		rows := min(mr64, mc-ir)
		if isTrans(transA) {
			// op(A)(i, l) = A(l, i) = a[(pc+l) + (ic+i)*lda]
			for l := 0; l < kc; l++ {
				dst := ap[base+l*mr64 : base+l*mr64+mr64]
				for ii := 0; ii < rows; ii++ {
					dst[ii] = a[(pc+l)+(ic+ir+ii)*lda]
				}
				for ii := rows; ii < mr64; ii++ {
					dst[ii] = 0
				}
			}
			continue
		}
		for l := 0; l < kc; l++ {
			src := a[(ic+ir)+(pc+l)*lda:]
			dst := ap[base+l*mr64 : base+l*mr64+mr64]
			for ii := 0; ii < rows; ii++ {
				dst[ii] = src[ii]
			}
			for ii := rows; ii < mr64; ii++ {
				dst[ii] = 0
			}
		}
	}
}

// packB64 packs the kc x nc block of op(B) starting at logical (pc, jc) into
// NR-column panels: panel jp holds columns [jp*NR, jp*NR+NR) stored
// ((l, jj) -> bp[jp*kc*NR + l*NR + jj]). Columns beyond nc pad with zeros.
//
//blobvet:hotpath
func packB64(transB Transpose, b []float64, ldb, pc, jc, kc, nc int, bp []float64) {
	nPanels := (nc + nr64 - 1) / nr64
	for jpn := 0; jpn < nPanels; jpn++ {
		base := jpn * kc * nr64
		jr := jpn * nr64
		cols := min(nr64, nc-jr)
		if isTrans(transB) {
			// op(B)(l, j) = B(j, l) = b[(jc+j) + (pc+l)*ldb]
			for l := 0; l < kc; l++ {
				dst := bp[base+l*nr64 : base+l*nr64+nr64]
				src := b[(jc+jr)+(pc+l)*ldb:]
				for jj := 0; jj < cols; jj++ {
					dst[jj] = src[jj]
				}
				for jj := cols; jj < nr64; jj++ {
					dst[jj] = 0
				}
			}
			continue
		}
		for l := 0; l < kc; l++ {
			dst := bp[base+l*nr64 : base+l*nr64+nr64]
			for jj := 0; jj < cols; jj++ {
				dst[jj] = b[(pc+l)+(jc+jr+jj)*ldb]
			}
			for jj := cols; jj < nr64; jj++ {
				dst[jj] = 0
			}
		}
	}
}
