package blas_test

import (
	"fmt"

	"repro/internal/blas"
)

// ExampleOptDgemm shows the README's standalone-BLAS usage: column-major
// operands, beta = 0 so C is written without being read (the paper's
// Table I contract). A is 2x3, B is 3x2, C is 2x2.
func ExampleOptDgemm() {
	m, n, k := 2, 2, 3
	a := []float64{ // column-major 2x3: [1 2 3; 4 5 6]
		1, 4,
		2, 5,
		3, 6,
	}
	b := []float64{ // column-major 3x2: [7 10; 8 11; 9 12]
		7, 8, 9,
		10, 11, 12,
	}
	c := make([]float64, m*n)
	blas.OptDgemm(blas.NoTrans, blas.NoTrans, m, n, k, 1, a, m, b, k, 0, c, m)
	fmt.Println(c)
	// Output: [50 122 68 167]
}
