package blas

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDrotgAnnihilates(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		// Keep magnitudes sane for the tolerance below.
		if math.Abs(a) > 1e100 || math.Abs(b) > 1e100 {
			return true
		}
		c, s, r, _ := RefDrotg(a, b)
		// Rotation applied to (a, b) gives (r, 0).
		got1 := c*a + s*b
		got2 := -s*a + c*b
		scale := math.Max(math.Abs(a), math.Abs(b)) + 1
		return math.Abs(got1-r) <= 1e-12*scale && math.Abs(got2) <= 1e-12*scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDrotgUnitary(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		// The scaled form guards against overflow of a²+b², not of |a|+|b|
		// itself (neither does the reference BLAS); keep the test inside
		// the representable-scale domain, away from subnormals as well.
		mag := math.Max(math.Abs(a), math.Abs(b))
		if mag > 1e150 || (mag != 0 && mag < 1e-150) {
			return true
		}
		c, s, _, _ := RefDrotg(a, b)
		return math.Abs(c*c+s*s-1) <= 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDrotgSpecialCases(t *testing.T) {
	c, s, r, z := RefDrotg(0, 0)
	if c != 1 || s != 0 || r != 0 || z != 0 {
		t.Fatalf("rotg(0,0) = %v %v %v %v", c, s, r, z)
	}
	c, s, r, z = RefDrotg(3, 0)
	if c != 1 || s != 0 || r != 3 || z != 0 { //blobvet:allow floatcompare -- rotg(3,0) special case produces r=3 exactly by definition
		t.Fatalf("rotg(3,0) = %v %v %v %v", c, s, r, z)
	}
	c, s, r, z = RefDrotg(0, 5)
	if c != 0 || s != 1 || r != 5 || z != 1 { //blobvet:allow floatcompare -- rotg(0,5) special case produces r=5 exactly by definition
		t.Fatalf("rotg(0,5) = %v %v %v %v", c, s, r, z)
	}
	// The classic 3-4-5 triangle.
	c, s, r, _ = RefDrotg(4, 3)
	if math.Abs(r-5) > 1e-14 || math.Abs(c-0.8) > 1e-14 || math.Abs(s-0.6) > 1e-14 {
		t.Fatalf("rotg(4,3) = c=%v s=%v r=%v", c, s, r)
	}
}

func TestDrotgNoOverflow(t *testing.T) {
	// Naive sqrt(a²+b²) would overflow here; the scaled form must not.
	_, _, r, _ := RefDrotg(1e300, 1e300)
	if math.IsInf(r, 0) || math.IsNaN(r) {
		t.Fatalf("rotg overflowed: r=%v", r)
	}
	want := 1e300 * math.Sqrt2
	if math.Abs(r-want) > 1e286 {
		t.Fatalf("r = %v, want %v", r, want)
	}
}

func TestDrotgComposesWithDrot(t *testing.T) {
	// Generating a rotation and applying it via RefDrot must annihilate the
	// second component of the vector pair.
	x := []float64{4, 7, -2}
	y := []float64{3, -1, 5}
	c, s, r, _ := RefDrotg(x[0], y[0])
	RefDrot(3, x, 1, y, 1, c, s)
	if math.Abs(x[0]-r) > 1e-14 || math.Abs(y[0]) > 1e-14 {
		t.Fatalf("rot∘rotg: x0=%v (want %v), y0=%v (want 0)", x[0], r, y[0])
	}
}

func TestSrotg(t *testing.T) {
	c, s, r, _ := RefSrotg(4, 3)
	if math.Abs(float64(r)-5) > 1e-6 || math.Abs(float64(c)-0.8) > 1e-6 || math.Abs(float64(s)-0.6) > 1e-6 {
		t.Fatalf("srotg(4,3) = c=%v s=%v r=%v", c, s, r)
	}
}
