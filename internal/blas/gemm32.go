package blas

import "repro/internal/parallel"

// Optimized float32 GEMM. Same five-loop structure as gemm64.go, with a
// wider 8x4 microkernel: float32 halves the register footprint, so the tile
// doubles in M to raise arithmetic intensity per packed-panel load.
const (
	mc32 = 256
	kc32 = 256
	nc32 = 1024
	mr32 = 8
	nr32 = 4
)

// OptSgemm computes C = alpha*op(A)*op(B) + beta*C with cache blocking and
// multi-threading. Semantics match RefSgemm exactly.
func OptSgemm(transA, transB Transpose, m, n, k int, alpha float32, a []float32, lda int, b []float32, ldb int, beta float32, c []float32, ldc int) {
	checkGemm(transA, transB, m, n, k, lda, ldb, ldc)
	if m == 0 || n == 0 {
		return
	}
	for j := 0; j < n; j++ {
		cj := c[j*ldc : j*ldc+m]
		if beta == 0 {
			for i := range cj {
				cj[i] = 0
			}
		} else if beta != 1 {
			for i := range cj {
				cj[i] *= beta
			}
		}
	}
	if alpha == 0 || k == 0 {
		return
	}
	p := getPool()
	flops := 2 * int64(m) * int64(n) * int64(k)
	if p.Workers() == 1 || flops < parallelGrainFlops {
		gemmSerial32(transA, transB, m, n, k, alpha, a, lda, b, ldb, c, ldc)
		return
	}
	if n >= m {
		p.For(n, func(_ int, r parallel.Range) {
			bOff, cOff := r.Lo*ldb, r.Lo*ldc
			if isTrans(transB) {
				bOff = r.Lo
			}
			gemmSerial32(transA, transB, m, r.Len(), k, alpha, a, lda, b[bOff:], ldb, c[cOff:], ldc)
		})
		return
	}
	p.For(m, func(_ int, r parallel.Range) {
		aOff, cOff := r.Lo, r.Lo
		if isTrans(transA) {
			aOff = r.Lo * lda
		}
		gemmSerial32(transA, transB, r.Len(), n, k, alpha, a[aOff:], lda, b, ldb, c[cOff:], ldc)
	})
}

// gemmSerial32 performs the packed, blocked update C += alpha*op(A)*op(B)
// on a single thread. C must already hold beta*C.
func gemmSerial32(transA, transB Transpose, m, n, k int, alpha float32, a []float32, lda int, b []float32, ldb int, c []float32, ldc int) {
	// Pack buffers sized to the actual block extents (padded to whole
	// micro-panels), so small and batched GEMMs don't allocate full-size
	// panels.
	mcMax, kcMax, ncMax := min(mc32, m), min(kc32, k), min(nc32, n)
	aPack := make([]float32, (mcMax+mr32-1)/mr32*mr32*kcMax)
	bPack := make([]float32, (ncMax+nr32-1)/nr32*nr32*kcMax)
	var acc [mr32 * nr32]float32
	for jc := 0; jc < n; jc += nc32 {
		nc := min(nc32, n-jc)
		for pc := 0; pc < k; pc += kc32 {
			kc := min(kc32, k-pc)
			packB32(transB, b, ldb, pc, jc, kc, nc, bPack)
			for ic := 0; ic < m; ic += mc32 {
				mc := min(mc32, m-ic)
				packA32(transA, a, lda, ic, pc, mc, kc, aPack)
				nPanels := (nc + nr32 - 1) / nr32
				mPanels := (mc + mr32 - 1) / mr32
				for jp := 0; jp < nPanels; jp++ {
					bp := bPack[jp*kc*nr32 : (jp+1)*kc*nr32]
					jr := jp * nr32
					njr := min(nr32, nc-jr)
					for ip := 0; ip < mPanels; ip++ {
						ap := aPack[ip*kc*mr32 : (ip+1)*kc*mr32]
						microKernel32(kc, ap, bp, &acc)
						ir := ip * mr32
						mir := min(mr32, mc-ir)
						for jj := 0; jj < njr; jj++ {
							ccol := c[(jc+jr+jj)*ldc+ic+ir : (jc+jr+jj)*ldc+ic+ir+mir]
							for ii := 0; ii < mir; ii++ {
								ccol[ii] += alpha * acc[ii*nr32+jj]
							}
						}
					}
				}
			}
		}
	}
}

// microKernel32 computes acc = ap * bp for one 8x4 tile.
//
//blobvet:hotpath
func microKernel32(kc int, ap, bp []float32, acc *[mr32 * nr32]float32) {
	for i := range acc {
		acc[i] = 0
	}
	for l := 0; l < kc; l++ {
		b0, b1, b2, b3 := bp[l*nr32], bp[l*nr32+1], bp[l*nr32+2], bp[l*nr32+3]
		arow := ap[l*mr32 : l*mr32+mr32]
		for ii := 0; ii < mr32; ii++ {
			av := arow[ii]
			acc[ii*nr32] += av * b0
			acc[ii*nr32+1] += av * b1
			acc[ii*nr32+2] += av * b2
			acc[ii*nr32+3] += av * b3
		}
	}
}

// packA32 packs the mc x kc block of op(A) into MR-row panels (see
// packA64 for the layout).
//
//blobvet:hotpath
func packA32(transA Transpose, a []float32, lda, ic, pc, mc, kc int, ap []float32) {
	mPanels := (mc + mr32 - 1) / mr32
	for ipn := 0; ipn < mPanels; ipn++ {
		base := ipn * kc * mr32
		ir := ipn * mr32
		rows := min(mr32, mc-ir)
		if isTrans(transA) {
			for l := 0; l < kc; l++ {
				dst := ap[base+l*mr32 : base+l*mr32+mr32]
				for ii := 0; ii < rows; ii++ {
					dst[ii] = a[(pc+l)+(ic+ir+ii)*lda]
				}
				for ii := rows; ii < mr32; ii++ {
					dst[ii] = 0
				}
			}
			continue
		}
		for l := 0; l < kc; l++ {
			src := a[(ic+ir)+(pc+l)*lda:]
			dst := ap[base+l*mr32 : base+l*mr32+mr32]
			for ii := 0; ii < rows; ii++ {
				dst[ii] = src[ii]
			}
			for ii := rows; ii < mr32; ii++ {
				dst[ii] = 0
			}
		}
	}
}

// packB32 packs the kc x nc block of op(B) into NR-column panels (see
// packB64 for the layout).
//
//blobvet:hotpath
func packB32(transB Transpose, b []float32, ldb, pc, jc, kc, nc int, bp []float32) {
	nPanels := (nc + nr32 - 1) / nr32
	for jpn := 0; jpn < nPanels; jpn++ {
		base := jpn * kc * nr32
		jr := jpn * nr32
		cols := min(nr32, nc-jr)
		if isTrans(transB) {
			for l := 0; l < kc; l++ {
				dst := bp[base+l*nr32 : base+l*nr32+nr32]
				src := b[(jc+jr)+(pc+l)*ldb:]
				for jj := 0; jj < cols; jj++ {
					dst[jj] = src[jj]
				}
				for jj := cols; jj < nr32; jj++ {
					dst[jj] = 0
				}
			}
			continue
		}
		for l := 0; l < kc; l++ {
			dst := bp[base+l*nr32 : base+l*nr32+nr32]
			for jj := 0; jj < cols; jj++ {
				dst[jj] = b[(pc+l)+(jc+jr+jj)*ldb]
			}
			for jj := cols; jj < nr32; jj++ {
				dst[jj] = 0
			}
		}
	}
}
