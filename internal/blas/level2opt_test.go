package blas

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOptDgerMatchesRef(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, n := 1+r.Intn(400), 1+r.Intn(400)
		x := randSlice64(r, m)
		y := randSlice64(r, n)
		a0 := randSlice64(r, m*n)
		aRef := append([]float64(nil), a0...)
		aOpt := append([]float64(nil), a0...)
		RefDger(m, n, 1.5, x, 1, y, 1, aRef, m)
		OptDger(m, n, 1.5, x, 1, y, 1, aOpt, m)
		return maxDiff64(aRef, aOpt) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestOptSgerMatchesRef(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	m, n := 500, 500
	x := randSlice32(r, m)
	y := randSlice32(r, n)
	a0 := randSlice32(r, m*n)
	aRef := append([]float32(nil), a0...)
	aOpt := append([]float32(nil), a0...)
	RefSger(m, n, -0.5, x, 1, y, 1, aRef, m)
	OptSger(m, n, -0.5, x, 1, y, 1, aOpt, m)
	if d := maxDiff32(aRef, aOpt); d != 0 {
		t.Fatalf("sger diff %g", d)
	}
}

func TestOptGerStridedFallsBack(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	m, n := 600, 600
	x := randSlice64(r, 2*m)
	y := randSlice64(r, n)
	a0 := randSlice64(r, m*n)
	aRef := append([]float64(nil), a0...)
	aOpt := append([]float64(nil), a0...)
	RefDger(m, n, 2, x, 2, y, 1, aRef, m)
	OptDger(m, n, 2, x, 2, y, 1, aOpt, m)
	if d := maxDiff64(aRef, aOpt); d != 0 {
		t.Fatalf("strided ger diff %g", d)
	}
}

func TestOptGerAlphaZeroNoop(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	OptDger(2, 2, 0, []float64{9, 9}, 1, []float64{9, 9}, 1, a, 2)
	if a[0] != 1 || a[3] != 4 { //blobvet:allow floatcompare -- alpha=0 must be a no-op; untouched bits are exact
		t.Fatal("alpha=0 ger modified A")
	}
}

func TestOptDsymvMatchesRef(t *testing.T) {
	for _, uplo := range []Uplo{Upper, Lower} {
		f := func(seed int64) bool {
			r := rand.New(rand.NewSource(seed))
			n := 1 + r.Intn(500)
			a := symmetrize(r, n)
			x := randSlice64(r, n)
			y0 := randSlice64(r, n)
			yRef := append([]float64(nil), y0...)
			yOpt := append([]float64(nil), y0...)
			RefDsymv(uplo, n, 1.25, a, n, x, 1, 0.75, yRef, 1)
			OptDsymv(uplo, n, 1.25, a, n, x, 1, 0.75, yOpt, 1)
			return maxDiff64(yRef, yOpt) <= 1e-11*float64(n+1)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
			t.Fatalf("uplo=%c: %v", uplo, err)
		}
	}
}

func TestOptSsymvMatchesRef(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	n := 700
	a := make([]float32, n*n)
	for j := 0; j < n; j++ {
		for i := 0; i <= j; i++ {
			v := r.Float32()
			a[i+j*n] = v
			a[j+i*n] = v
		}
	}
	x := randSlice32(r, n)
	yRef := make([]float32, n)
	yOpt := make([]float32, n)
	RefSsymv(Upper, n, 1, a, n, x, 1, 0, yRef, 1)
	OptSsymv(Upper, n, 1, a, n, x, 1, 0, yOpt, 1)
	if d := maxDiff32(yRef, yOpt); d > 1e-3 {
		t.Fatalf("ssymv diff %g", d)
	}
}

func TestOptTrmvTrsvDelegate(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	n := 60
	a := make([]float64, n*n)
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			if i == j {
				a[i+j*n] = 2 + r.Float64()
			} else {
				a[i+j*n] = (r.Float64()*2 - 1) / float64(n)
			}
		}
	}
	x := randSlice64(r, n)
	got := append([]float64(nil), x...)
	OptDtrmv(Lower, NoTrans, NonUnit, n, a, n, got, 1)
	OptDtrsv(Lower, NoTrans, NonUnit, n, a, n, got, 1)
	if d := maxDiff64(got, x); d > 1e-10 {
		t.Fatalf("opt trmv/trsv round trip diff %g", d)
	}
}
