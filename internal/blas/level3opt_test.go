package blas

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randTriangular64 builds a well-conditioned na x na triangular matrix with
// the given uplo (the other triangle holds garbage to prove it is never
// read).
func randTriangular64(r *rand.Rand, na int, uplo Uplo) []float64 {
	a := make([]float64, na*na)
	for j := 0; j < na; j++ {
		for i := 0; i < na; i++ {
			inTri := (uplo == Lower && i >= j) || (uplo == Upper && i <= j)
			switch {
			case i == j:
				a[i+j*na] = 2 + r.Float64()
			case inTri:
				a[i+j*na] = (r.Float64()*2 - 1) / float64(na)
			default:
				a[i+j*na] = 1e30 // poison: must never be referenced
			}
		}
	}
	return a
}

func TestOptDtrsmMatchesRef(t *testing.T) {
	for _, side := range []Side{Left, Right} {
		for _, uplo := range []Uplo{Upper, Lower} {
			for _, trans := range []Transpose{NoTrans, Trans} {
				for _, diag := range []Diag{NonUnit, Unit} {
					f := func(seed int64) bool {
						r := rand.New(rand.NewSource(seed))
						// Sizes straddling the recursion block size.
						m := 1 + r.Intn(150)
						n := 1 + r.Intn(150)
						na := m
						if side == Right {
							na = n
						}
						a := randTriangular64(r, na, uplo)
						b := randSlice64(r, m*n)
						bRef := append([]float64(nil), b...)
						bOpt := append([]float64(nil), b...)
						RefDtrsm(side, uplo, trans, diag, m, n, 1.5, a, na, bRef, m)
						OptDtrsm(side, uplo, trans, diag, m, n, 1.5, a, na, bOpt, m)
						return maxDiff64(bRef, bOpt) <= 1e-9
					}
					if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
						t.Fatalf("side=%c uplo=%c trans=%c diag=%c: %v", side, uplo, trans, diag, err)
					}
				}
			}
		}
	}
}

func TestOptDtrmmMatchesRef(t *testing.T) {
	for _, side := range []Side{Left, Right} {
		for _, uplo := range []Uplo{Upper, Lower} {
			for _, trans := range []Transpose{NoTrans, Trans} {
				for _, diag := range []Diag{NonUnit, Unit} {
					f := func(seed int64) bool {
						r := rand.New(rand.NewSource(seed))
						m := 1 + r.Intn(150)
						n := 1 + r.Intn(150)
						na := m
						if side == Right {
							na = n
						}
						a := randTriangular64(r, na, uplo)
						b := randSlice64(r, m*n)
						bRef := append([]float64(nil), b...)
						bOpt := append([]float64(nil), b...)
						RefDtrmm(side, uplo, trans, diag, m, n, 0.75, a, na, bRef, m)
						OptDtrmm(side, uplo, trans, diag, m, n, 0.75, a, na, bOpt, m)
						return maxDiff64(bRef, bOpt) <= 1e-9
					}
					if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
						t.Fatalf("side=%c uplo=%c trans=%c diag=%c: %v", side, uplo, trans, diag, err)
					}
				}
			}
		}
	}
}

func TestOptDsyrkMatchesRef(t *testing.T) {
	for _, uplo := range []Uplo{Upper, Lower} {
		for _, trans := range []Transpose{NoTrans, Trans} {
			f := func(seed int64) bool {
				r := rand.New(rand.NewSource(seed))
				n := 1 + r.Intn(180)
				k := 1 + r.Intn(60)
				rows, cols := n, k
				if trans == Trans {
					rows, cols = k, n
				}
				a := randSlice64(r, rows*cols)
				c := randSlice64(r, n*n)
				cRef := append([]float64(nil), c...)
				cOpt := append([]float64(nil), c...)
				RefDsyrk(uplo, trans, n, k, 1.25, a, rows, 0.5, cRef, n)
				OptDsyrk(uplo, trans, n, k, 1.25, a, rows, 0.5, cOpt, n)
				return maxDiff64(cRef, cOpt) <= 1e-10*float64(k+1)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
				t.Fatalf("uplo=%c trans=%c: %v", uplo, trans, err)
			}
		}
	}
}

func TestOptDsyrkLeavesOtherTriangleUntouched(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	n, k := 130, 20
	a := randSlice64(r, n*k)
	c := make([]float64, n*n)
	for i := range c {
		c[i] = 42
	}
	OptDsyrk(Lower, NoTrans, n, k, 1, a, n, 0, c, n)
	for j := 1; j < n; j++ {
		for i := 0; i < j; i++ {
			if c[i+j*n] != 42 { //blobvet:allow floatcompare -- poison value: the untouched triangle must stay bit-identical
				t.Fatalf("upper triangle touched at (%d,%d)", i, j)
			}
		}
	}
}

func TestOptDsymmMatchesRef(t *testing.T) {
	for _, side := range []Side{Left, Right} {
		for _, uplo := range []Uplo{Upper, Lower} {
			f := func(seed int64) bool {
				r := rand.New(rand.NewSource(seed))
				m := 1 + r.Intn(160)
				n := 1 + r.Intn(160)
				na := m
				if side == Right {
					na = n
				}
				// Symmetric data in the uplo triangle, poison elsewhere.
				a := make([]float64, na*na)
				for j := 0; j < na; j++ {
					for i := 0; i < na; i++ {
						inTri := (uplo == Lower && i >= j) || (uplo == Upper && i <= j)
						if inTri {
							a[i+j*na] = r.Float64()*2 - 1
						} else {
							a[i+j*na] = 1e30
						}
					}
				}
				b := randSlice64(r, m*n)
				c := randSlice64(r, m*n)
				cRef := append([]float64(nil), c...)
				cOpt := append([]float64(nil), c...)
				RefDsymm(side, uplo, m, n, 1.5, a, na, b, m, 0.5, cRef, m)
				OptDsymm(side, uplo, m, n, 1.5, a, na, b, m, 0.5, cOpt, m)
				return maxDiff64(cRef, cOpt) <= 1e-10*float64(na+1)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
				t.Fatalf("side=%c uplo=%c: %v", side, uplo, err)
			}
		}
	}
}

// Cholesky-style integration: factor a symmetric positive definite matrix
// with the blocked kernels (syrk + trsm + gemm), then verify L*Lᵀ = A.
// This is how the optimized Level-3 kernels compose in real applications
// (the paper's LU-factorization motivation, §III-C).
func TestBlockedCholeskyIntegration(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	const n, nb = 200, 48
	// Build SPD A = M*Mᵀ + n*I.
	m := randSlice64(r, n*n)
	a := make([]float64, n*n)
	OptDsyrk(Lower, NoTrans, n, n, 1, m, n, 0, a, n)
	for i := 0; i < n; i++ {
		a[i+i*n] += float64(n)
	}
	orig := append([]float64(nil), a...)
	// Blocked right-looking Cholesky on the lower triangle.
	for j := 0; j < n; j += nb {
		jb := min(nb, n-j)
		// Unblocked Cholesky of the diagonal block.
		for c := j; c < j+jb; c++ {
			var s float64
			for l := j; l < c; l++ {
				s += a[c+l*n] * a[c+l*n]
			}
			d := a[c+c*n] - s
			if d <= 0 {
				t.Fatal("matrix not positive definite")
			}
			a[c+c*n] = math.Sqrt(d)
			for i := c + 1; i < j+jb; i++ {
				var s2 float64
				for l := j; l < c; l++ {
					s2 += a[i+l*n] * a[c+l*n]
				}
				a[i+c*n] = (a[i+c*n] - s2) / a[c+c*n]
			}
		}
		if j+jb < n {
			// Panel solve: A21 = A21 * L11^-T  (X * L11ᵀ = A21).
			OptDtrsm(Right, Lower, Trans, NonUnit, n-j-jb, jb, 1, a[j+j*n:], n, a[j+jb+j*n:], n)
			// Trailing update: A22 -= L21*L21ᵀ.
			OptDsyrk(Lower, NoTrans, n-j-jb, jb, -1, a[j+jb+j*n:], n, 1, a[j+jb+(j+jb)*n:], n)
		}
	}
	// Reconstruct L*Lᵀ and compare with the original (lower triangle).
	l := make([]float64, n*n)
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			l[i+j*n] = a[i+j*n]
		}
	}
	rec := make([]float64, n*n)
	OptDgemm(NoTrans, Trans, n, n, n, 1, l, n, l, n, 0, rec, n)
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			diff := rec[i+j*n] - orig[i+j*n]
			if diff > 1e-8 || diff < -1e-8 {
				t.Fatalf("L*Lt mismatch at (%d,%d): %g", i, j, diff)
			}
		}
	}
}
