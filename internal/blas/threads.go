package blas

import (
	"sync"

	"repro/internal/parallel"
)

// The optimized kernels share one worker pool. Its size is the library's
// "thread count", the analogue of OMP_NUM_THREADS / BLIS_NUM_THREADS in the
// paper's runs (§IV). SetThreads(1) turns every Opt* kernel into a serial
// kernel, which the library-comparison experiments rely on.

var (
	poolMu sync.RWMutex
	pool   = parallel.NewPool(0)
)

// SetThreads fixes the number of worker threads used by the optimized
// kernels. n < 1 resets to GOMAXPROCS.
func SetThreads(n int) {
	p := parallel.NewPool(n)
	poolMu.Lock()
	pool = p
	poolMu.Unlock()
}

// Threads returns the current worker count of the optimized kernels.
func Threads() int {
	poolMu.RLock()
	defer poolMu.RUnlock()
	return pool.Workers()
}

func getPool() *parallel.Pool {
	poolMu.RLock()
	defer poolMu.RUnlock()
	return pool
}

// parallelGrainFlops is the approximate per-kernel-invocation FLOP count
// below which going parallel costs more than it saves.
const parallelGrainFlops = 1 << 17
