package blas

//blobvet:file-allow floatcompare -- level-1 semantics tests: inputs are small integers and copy/swap/scale results are exact by IEEE-754; bitwise equality is the property under test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDdotBasic(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{5, 6, 7, 8}
	if got := RefDdot(4, x, 1, y, 1); got != 70 {
		t.Fatalf("ddot = %v, want 70", got)
	}
	if got := RefDdot(0, x, 1, y, 1); got != 0 {
		t.Fatalf("ddot n=0 = %v, want 0", got)
	}
	if got := RefDdot(-3, x, 1, y, 1); got != 0 {
		t.Fatalf("ddot n<0 = %v, want 0", got)
	}
	// Strided: every other element of x.
	if got := RefDdot(2, x, 2, y, 1); got != 1*5+3*6 {
		t.Fatalf("strided ddot = %v", got)
	}
}

func TestDdotCommutative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(100)
		x := randSlice64(r, n)
		y := randSlice64(r, n)
		return math.Abs(RefDdot(n, x, 1, y, 1)-RefDdot(n, y, 1, x, 1)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDaxpy(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{10, 20, 30}
	RefDaxpy(3, 2, x, 1, y, 1)
	want := []float64{12, 24, 36}
	if maxDiff64(y, want) != 0 {
		t.Fatalf("daxpy = %v, want %v", y, want)
	}
	// alpha == 0 is a no-op.
	RefDaxpy(3, 0, x, 1, y, 1)
	if maxDiff64(y, want) != 0 {
		t.Fatalf("daxpy alpha=0 modified y: %v", y)
	}
}

func TestDscal(t *testing.T) {
	x := []float64{1, -2, 3, -4}
	RefDscal(4, -2, x, 1)
	want := []float64{-2, 4, -6, 8}
	if maxDiff64(x, want) != 0 {
		t.Fatalf("dscal = %v, want %v", x, want)
	}
	// Strided scal touches only the strided elements.
	x = []float64{1, 1, 1, 1}
	RefDscal(2, 5, x, 2)
	want = []float64{5, 1, 5, 1}
	if maxDiff64(x, want) != 0 {
		t.Fatalf("strided dscal = %v, want %v", x, want)
	}
}

func TestDnrm2(t *testing.T) {
	x := []float64{3, 4}
	if got := RefDnrm2(2, x, 1); math.Abs(got-5) > 1e-15 {
		t.Fatalf("dnrm2 = %v, want 5", got)
	}
	if got := RefDnrm2(0, x, 1); got != 0 {
		t.Fatalf("dnrm2 n=0 = %v", got)
	}
	// Overflow guard: huge values must not overflow to +Inf.
	h := []float64{1e308, 1e308}
	got := RefDnrm2(2, h, 1)
	if math.IsInf(got, 0) || math.IsNaN(got) {
		t.Fatalf("dnrm2 overflowed: %v", got)
	}
	if math.Abs(got-1e308*math.Sqrt2) > 1e293 {
		t.Fatalf("dnrm2 big = %v", got)
	}
	// Underflow guard: tiny values must not round to 0.
	tiny := []float64{1e-160, 1e-160}
	got = RefDnrm2(2, tiny, 1)
	if got == 0 {
		t.Fatal("dnrm2 underflowed to 0")
	}
}

func TestDnrm2ScaleInvariance(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(50)
		x := randSlice64(r, n)
		base := RefDnrm2(n, x, 1)
		scaled := append([]float64(nil), x...)
		RefDscal(n, 3, scaled, 1)
		return math.Abs(RefDnrm2(n, scaled, 1)-3*base) < 1e-10*(base+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDasum(t *testing.T) {
	x := []float64{1, -2, 3, -4}
	if got := RefDasum(4, x, 1); got != 10 {
		t.Fatalf("dasum = %v, want 10", got)
	}
}

func TestIdamax(t *testing.T) {
	x := []float64{1, -7, 3, 7}
	if got := RefIdamax(4, x, 1); got != 1 {
		t.Fatalf("idamax = %v, want 1 (ties resolve to lowest index)", got)
	}
	if got := RefIdamax(0, x, 1); got != -1 {
		t.Fatalf("idamax n=0 = %v, want -1", got)
	}
}

func TestDcopyDswap(t *testing.T) {
	x := []float64{1, 2, 3}
	y := make([]float64, 3)
	RefDcopy(3, x, 1, y, 1)
	if maxDiff64(x, y) != 0 {
		t.Fatalf("dcopy: %v", y)
	}
	a := []float64{1, 2}
	b := []float64{3, 4}
	RefDswap(2, a, 1, b, 1)
	if a[0] != 3 || a[1] != 4 || b[0] != 1 || b[1] != 2 {
		t.Fatalf("dswap: %v %v", a, b)
	}
}

func TestDrotPreservesNorm(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(40)
		x := randSlice64(r, n)
		y := randSlice64(r, n)
		before := RefDdot(n, x, 1, x, 1) + RefDdot(n, y, 1, y, 1)
		theta := r.Float64() * 2 * math.Pi
		RefDrot(n, x, 1, y, 1, math.Cos(theta), math.Sin(theta))
		after := RefDdot(n, x, 1, x, 1) + RefDdot(n, y, 1, y, 1)
		return math.Abs(before-after) < 1e-10*(before+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Float32 variants.

func TestSdotSaxpySscal(t *testing.T) {
	x := []float32{1, 2, 3, 4}
	y := []float32{5, 6, 7, 8}
	if got := RefSdot(4, x, 1, y, 1); got != 70 {
		t.Fatalf("sdot = %v", got)
	}
	RefSaxpy(4, 2, x, 1, y, 1)
	if y[0] != 7 || y[3] != 16 {
		t.Fatalf("saxpy = %v", y)
	}
	RefSscal(4, 0.5, x, 1)
	if x[0] != 0.5 || x[3] != 2 {
		t.Fatalf("sscal = %v", x)
	}
}

func TestSnrm2(t *testing.T) {
	x := []float32{3, 4}
	if got := RefSnrm2(2, x, 1); math.Abs(float64(got)-5) > 1e-6 {
		t.Fatalf("snrm2 = %v", got)
	}
	// float64 accumulation means large float32 values don't overflow.
	h := []float32{1e19, 1e19}
	if got := RefSnrm2(2, h, 1); math.IsInf(float64(got), 0) {
		t.Fatalf("snrm2 overflowed: %v", got)
	}
}

func TestSasumIsamax(t *testing.T) {
	x := []float32{-1, 5, -3}
	if got := RefSasum(3, x, 1); got != 9 {
		t.Fatalf("sasum = %v", got)
	}
	if got := RefIsamax(3, x, 1); got != 1 {
		t.Fatalf("isamax = %v", got)
	}
}

func TestScopySswapSrot(t *testing.T) {
	x := []float32{1, 2}
	y := make([]float32, 2)
	RefScopy(2, x, 1, y, 1)
	if y[0] != 1 || y[1] != 2 {
		t.Fatalf("scopy = %v", y)
	}
	RefSswap(2, x, 1, y, 1)
	if x[0] != 1 || y[0] != 1 {
		t.Fatalf("sswap = %v %v", x, y)
	}
	a := []float32{1}
	b := []float32{0}
	RefSrot(1, a, 1, b, 1, 0, 1)
	if math.Abs(float64(a[0])) > 1e-7 || math.Abs(float64(b[0])+1) > 1e-7 {
		t.Fatalf("srot = %v %v", a, b)
	}
}
