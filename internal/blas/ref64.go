package blas

import "math"

// This file holds the float64 reference kernels. They are deliberately
// written as the textbook loops, with beta handling hoisted out, and serve
// as both the semantic definition and the test oracle for the optimized
// kernels. Column-major throughout.

// RefDgemm computes C = alpha*op(A)*op(B) + beta*C where op(X) is X or Xᵀ.
// C is m-by-n, op(A) is m-by-k, op(B) is k-by-n. When beta == 0, C is
// written without being read (NaN-safe, matching vendor behaviour).
func RefDgemm(transA, transB Transpose, m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	checkGemm(transA, transB, m, n, k, lda, ldb, ldc)
	if m == 0 || n == 0 {
		return
	}
	// Scale or clear C first.
	for j := 0; j < n; j++ {
		cj := c[j*ldc : j*ldc+m]
		if beta == 0 {
			for i := range cj {
				cj[i] = 0
			}
		} else if beta != 1 {
			for i := range cj {
				cj[i] *= beta
			}
		}
	}
	if alpha == 0 || k == 0 {
		return
	}
	at := isTrans(transA)
	bt := isTrans(transB)
	aAt := func(i, l int) float64 {
		if at {
			return a[l+i*lda]
		}
		return a[i+l*lda]
	}
	bAt := func(l, j int) float64 {
		if bt {
			return b[j+l*ldb]
		}
		return b[l+j*ldb]
	}
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			var sum float64
			for l := 0; l < k; l++ {
				sum += aAt(i, l) * bAt(l, j)
			}
			c[i+j*ldc] += alpha * sum
		}
	}
}

// RefDgemv computes y = alpha*op(A)*x + beta*y for an m-by-n matrix A.
// When beta == 0, y is written without being read.
func RefDgemv(trans Transpose, m, n int, alpha float64, a []float64, lda int, x []float64, incX int, beta float64, y []float64, incY int) {
	checkGemv(trans, m, n, lda, incX, incY)
	lenY := lenGemvY(trans, m, n)
	if lenY == 0 {
		return
	}
	ky := vecStart(lenY, incY)
	for i := 0; i < lenY; i++ {
		idx := ky + i*incY
		if beta == 0 {
			y[idx] = 0
		} else if beta != 1 {
			y[idx] *= beta
		}
	}
	lenX := lenGemvX(trans, m, n)
	if alpha == 0 || lenX == 0 {
		return
	}
	kx := vecStart(lenX, incX)
	if isTrans(trans) {
		// y_j += alpha * dot(A[:,j], x)
		for j := 0; j < n; j++ {
			var sum float64
			col := a[j*lda : j*lda+m]
			for i := 0; i < m; i++ {
				sum += col[i] * x[kx+i*incX]
			}
			y[ky+j*incY] += alpha * sum
		}
		return
	}
	// y += alpha * A[:,j] * x_j, column by column.
	for j := 0; j < n; j++ {
		xv := alpha * x[kx+j*incX]
		if xv == 0 {
			continue
		}
		col := a[j*lda : j*lda+m]
		for i := 0; i < m; i++ {
			y[ky+i*incY] += xv * col[i]
		}
	}
}

// RefDger computes the rank-1 update A += alpha*x*yᵀ for an m-by-n matrix A.
func RefDger(m, n int, alpha float64, x []float64, incX int, y []float64, incY int, a []float64, lda int) {
	if m < 0 || n < 0 {
		panic("blas: negative ger dimension")
	}
	if lda < max(1, m) {
		panic("blas: ger lda too small")
	}
	if incX == 0 || incY == 0 {
		panic("blas: zero vector increment")
	}
	if m == 0 || n == 0 || alpha == 0 {
		return
	}
	kx, ky := vecStart(m, incX), vecStart(n, incY)
	for j := 0; j < n; j++ {
		yv := alpha * y[ky+j*incY]
		if yv == 0 {
			continue
		}
		col := a[j*lda : j*lda+m]
		for i := 0; i < m; i++ {
			col[i] += x[kx+i*incX] * yv
		}
	}
}

// RefDsymv computes y = alpha*A*x + beta*y for a symmetric n-by-n matrix A
// of which only the uplo triangle is referenced.
func RefDsymv(uplo Uplo, n int, alpha float64, a []float64, lda int, x []float64, incX int, beta float64, y []float64, incY int) {
	if uplo != Upper && uplo != Lower {
		panic("blas: invalid uplo")
	}
	if n < 0 {
		panic("blas: negative symv dimension")
	}
	if lda < max(1, n) {
		panic("blas: symv lda too small")
	}
	if incX == 0 || incY == 0 {
		panic("blas: zero vector increment")
	}
	if n == 0 {
		return
	}
	ky := vecStart(n, incY)
	for i := 0; i < n; i++ {
		idx := ky + i*incY
		if beta == 0 {
			y[idx] = 0
		} else if beta != 1 {
			y[idx] *= beta
		}
	}
	if alpha == 0 {
		return
	}
	kx := vecStart(n, incX)
	at := func(i, j int) float64 {
		if (uplo == Upper && i > j) || (uplo == Lower && i < j) {
			return a[j+i*lda]
		}
		return a[i+j*lda]
	}
	for i := 0; i < n; i++ {
		var sum float64
		for j := 0; j < n; j++ {
			sum += at(i, j) * x[kx+j*incX]
		}
		y[ky+i*incY] += alpha * sum
	}
}

// RefDtrmv computes x = op(A)*x for a triangular n-by-n matrix A.
func RefDtrmv(uplo Uplo, trans Transpose, diag Diag, n int, a []float64, lda int, x []float64, incX int) {
	if uplo != Upper && uplo != Lower {
		panic("blas: invalid uplo")
	}
	if !trans.valid() {
		panic("blas: invalid transpose")
	}
	if diag != Unit && diag != NonUnit {
		panic("blas: invalid diag")
	}
	if n < 0 {
		panic("blas: negative trmv dimension")
	}
	if lda < max(1, n) {
		panic("blas: trmv lda too small")
	}
	if incX == 0 {
		panic("blas: zero vector increment")
	}
	if n == 0 {
		return
	}
	kx := vecStart(n, incX)
	at := func(i, j int) float64 {
		if i == j && diag == Unit {
			return 1
		}
		lower := uplo == Lower
		if isTrans(trans) {
			i, j = j, i
		}
		if (lower && i < j) || (!lower && i > j) {
			return 0
		}
		return a[i+j*lda]
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		var sum float64
		for j := 0; j < n; j++ {
			v := at(i, j)
			if v != 0 {
				sum += v * x[kx+j*incX]
			}
		}
		out[i] = sum
	}
	for i := 0; i < n; i++ {
		x[kx+i*incX] = out[i]
	}
}

// RefDtrsv solves op(A)*x = b in place (x holds b on entry, the solution on
// exit) for a triangular n-by-n matrix A.
func RefDtrsv(uplo Uplo, trans Transpose, diag Diag, n int, a []float64, lda int, x []float64, incX int) {
	if uplo != Upper && uplo != Lower {
		panic("blas: invalid uplo")
	}
	if !trans.valid() {
		panic("blas: invalid transpose")
	}
	if diag != Unit && diag != NonUnit {
		panic("blas: invalid diag")
	}
	if n < 0 {
		panic("blas: negative trsv dimension")
	}
	if lda < max(1, n) {
		panic("blas: trsv lda too small")
	}
	if incX == 0 {
		panic("blas: zero vector increment")
	}
	if n == 0 {
		return
	}
	kx := vecStart(n, incX)
	// Effective triangle after transposition: Lower+Trans acts like Upper.
	lower := uplo == Lower
	if isTrans(trans) {
		lower = !lower
	}
	elem := func(i, j int) float64 {
		if isTrans(trans) {
			return a[j+i*lda]
		}
		return a[i+j*lda]
	}
	if lower {
		for i := 0; i < n; i++ {
			sum := x[kx+i*incX]
			for j := 0; j < i; j++ {
				sum -= elem(i, j) * x[kx+j*incX]
			}
			if diag == NonUnit {
				sum /= elem(i, i)
			}
			x[kx+i*incX] = sum
		}
		return
	}
	for i := n - 1; i >= 0; i-- {
		sum := x[kx+i*incX]
		for j := i + 1; j < n; j++ {
			sum -= elem(i, j) * x[kx+j*incX]
		}
		if diag == NonUnit {
			sum /= elem(i, i)
		}
		x[kx+i*incX] = sum
	}
}

// RefDsymm computes C = alpha*A*B + beta*C (side == Left) or
// C = alpha*B*A + beta*C (side == Right) for symmetric A.
func RefDsymm(side Side, uplo Uplo, m, n int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	if side != Left && side != Right {
		panic("blas: invalid side")
	}
	if uplo != Upper && uplo != Lower {
		panic("blas: invalid uplo")
	}
	if m < 0 || n < 0 {
		panic("blas: negative symm dimension")
	}
	na := m
	if side == Right {
		na = n
	}
	if lda < max(1, na) {
		panic("blas: symm lda too small")
	}
	if ldb < max(1, m) {
		panic("blas: symm ldb too small")
	}
	if ldc < max(1, m) {
		panic("blas: symm ldc too small")
	}
	if m == 0 || n == 0 {
		return
	}
	at := func(i, j int) float64 {
		if (uplo == Upper && i > j) || (uplo == Lower && i < j) {
			return a[j+i*lda]
		}
		return a[i+j*lda]
	}
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			var sum float64
			if side == Left {
				for l := 0; l < m; l++ {
					sum += at(i, l) * b[l+j*ldb]
				}
			} else {
				for l := 0; l < n; l++ {
					sum += b[i+l*ldb] * at(l, j)
				}
			}
			idx := i + j*ldc
			if beta == 0 {
				c[idx] = alpha * sum
			} else {
				c[idx] = alpha*sum + beta*c[idx]
			}
		}
	}
}

// RefDsyrk computes C = alpha*A*Aᵀ + beta*C (trans == NoTrans) or
// C = alpha*Aᵀ*A + beta*C (trans == Trans), updating only the uplo triangle
// of the symmetric n-by-n matrix C. A is n-by-k (or k-by-n when transposed).
func RefDsyrk(uplo Uplo, trans Transpose, n, k int, alpha float64, a []float64, lda int, beta float64, c []float64, ldc int) {
	if uplo != Upper && uplo != Lower {
		panic("blas: invalid uplo")
	}
	if !trans.valid() {
		panic("blas: invalid transpose")
	}
	if n < 0 || k < 0 {
		panic("blas: negative syrk dimension")
	}
	rows := n
	if isTrans(trans) {
		rows = k
	}
	if lda < max(1, rows) {
		panic("blas: syrk lda too small")
	}
	if ldc < max(1, n) {
		panic("blas: syrk ldc too small")
	}
	if n == 0 {
		return
	}
	at := func(i, l int) float64 {
		if isTrans(trans) {
			return a[l+i*lda]
		}
		return a[i+l*lda]
	}
	for j := 0; j < n; j++ {
		iLo, iHi := 0, j+1
		if uplo == Lower {
			iLo, iHi = j, n
		}
		for i := iLo; i < iHi; i++ {
			var sum float64
			for l := 0; l < k; l++ {
				sum += at(i, l) * at(j, l)
			}
			idx := i + j*ldc
			if beta == 0 {
				c[idx] = alpha * sum
			} else {
				c[idx] = alpha*sum + beta*c[idx]
			}
		}
	}
}

// RefDtrmm computes B = alpha*op(A)*B (side == Left) or B = alpha*B*op(A)
// (side == Right) for triangular A.
func RefDtrmm(side Side, uplo Uplo, trans Transpose, diag Diag, m, n int, alpha float64, a []float64, lda int, b []float64, ldb int) {
	if side != Left && side != Right {
		panic("blas: invalid side")
	}
	if uplo != Upper && uplo != Lower {
		panic("blas: invalid uplo")
	}
	if !trans.valid() {
		panic("blas: invalid transpose")
	}
	if diag != Unit && diag != NonUnit {
		panic("blas: invalid diag")
	}
	if m < 0 || n < 0 {
		panic("blas: negative trmm dimension")
	}
	na := m
	if side == Right {
		na = n
	}
	if lda < max(1, na) {
		panic("blas: trmm lda too small")
	}
	if ldb < max(1, m) {
		panic("blas: trmm ldb too small")
	}
	if m == 0 || n == 0 {
		return
	}
	at := func(i, j int) float64 {
		if i == j && diag == Unit {
			return 1
		}
		lower := uplo == Lower
		if isTrans(trans) {
			i, j = j, i
		}
		if (lower && i < j) || (!lower && i > j) {
			return 0
		}
		return a[i+j*lda]
	}
	tmp := make([]float64, na)
	if side == Left {
		for j := 0; j < n; j++ {
			col := b[j*ldb : j*ldb+m]
			for i := 0; i < m; i++ {
				var sum float64
				for l := 0; l < m; l++ {
					v := at(i, l)
					if v != 0 {
						sum += v * col[l]
					}
				}
				tmp[i] = alpha * sum
			}
			copy(col, tmp[:m])
		}
		return
	}
	row := make([]float64, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			row[j] = b[i+j*ldb]
		}
		for j := 0; j < n; j++ {
			var sum float64
			for l := 0; l < n; l++ {
				v := at(l, j)
				if v != 0 {
					sum += row[l] * v
				}
			}
			tmp[j] = alpha * sum
		}
		for j := 0; j < n; j++ {
			b[i+j*ldb] = tmp[j]
		}
	}
}

// RefDtrsm solves op(A)*X = alpha*B (side == Left) or X*op(A) = alpha*B
// (side == Right) for triangular A, overwriting B with X.
func RefDtrsm(side Side, uplo Uplo, trans Transpose, diag Diag, m, n int, alpha float64, a []float64, lda int, b []float64, ldb int) {
	if side != Left && side != Right {
		panic("blas: invalid side")
	}
	if uplo != Upper && uplo != Lower {
		panic("blas: invalid uplo")
	}
	if !trans.valid() {
		panic("blas: invalid transpose")
	}
	if diag != Unit && diag != NonUnit {
		panic("blas: invalid diag")
	}
	if m < 0 || n < 0 {
		panic("blas: negative trsm dimension")
	}
	na := m
	if side == Right {
		na = n
	}
	if lda < max(1, na) {
		panic("blas: trsm lda too small")
	}
	if ldb < max(1, m) {
		panic("blas: trsm ldb too small")
	}
	if m == 0 || n == 0 {
		return
	}
	if alpha != 1 {
		for j := 0; j < n; j++ {
			col := b[j*ldb : j*ldb+m]
			for i := range col {
				col[i] *= alpha
			}
		}
	}
	if side == Left {
		// Solve op(A)*X = B column by column via trsv.
		for j := 0; j < n; j++ {
			RefDtrsv(uplo, trans, diag, m, a, lda, b[j*ldb:j*ldb+m], 1)
		}
		return
	}
	// Right side: X*op(A) = B  <=>  op(A)ᵀ*Xᵀ = Bᵀ; solve row by row.
	tr := Trans
	if isTrans(trans) {
		tr = NoTrans
	}
	row := make([]float64, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			row[j] = b[i+j*ldb]
		}
		RefDtrsv(uplo, tr, diag, n, a, lda, row, 1)
		for j := 0; j < n; j++ {
			b[i+j*ldb] = row[j]
		}
	}
}

// --- Level 1 references -------------------------------------------------

// RefDdot returns xᵀy over n elements.
func RefDdot(n int, x []float64, incX int, y []float64, incY int) float64 {
	if n <= 0 {
		return 0
	}
	kx, ky := vecStart(n, incX), vecStart(n, incY)
	var sum float64
	for i := 0; i < n; i++ {
		sum += x[kx+i*incX] * y[ky+i*incY]
	}
	return sum
}

// RefDaxpy computes y += alpha*x over n elements.
func RefDaxpy(n int, alpha float64, x []float64, incX int, y []float64, incY int) {
	if n <= 0 || alpha == 0 {
		return
	}
	kx, ky := vecStart(n, incX), vecStart(n, incY)
	for i := 0; i < n; i++ {
		y[ky+i*incY] += alpha * x[kx+i*incX]
	}
}

// RefDscal computes x *= alpha over n elements.
func RefDscal(n int, alpha float64, x []float64, incX int) {
	if n <= 0 || incX <= 0 {
		return
	}
	for i := 0; i < n; i++ {
		x[i*incX] *= alpha
	}
}

// RefDnrm2 returns the Euclidean norm of x, guarding against overflow by
// scaling, in the manner of the reference BLAS.
func RefDnrm2(n int, x []float64, incX int) float64 {
	if n <= 0 || incX <= 0 {
		return 0
	}
	var scale, ssq float64
	ssq = 1
	seen := false
	for i := 0; i < n; i++ {
		v := x[i*incX]
		if v == 0 {
			continue
		}
		av := math.Abs(v)
		if !seen {
			scale, ssq, seen = av, 1, true
			continue
		}
		if scale < av {
			r := scale / av
			ssq = 1 + ssq*r*r
			scale = av
		} else {
			r := av / scale
			ssq += r * r
		}
	}
	if !seen {
		return 0
	}
	return scale * math.Sqrt(ssq)
}

// RefDasum returns the sum of absolute values of x.
func RefDasum(n int, x []float64, incX int) float64 {
	if n <= 0 || incX <= 0 {
		return 0
	}
	var sum float64
	for i := 0; i < n; i++ {
		sum += math.Abs(x[i*incX])
	}
	return sum
}

// RefIdamax returns the index of the element of x with the largest absolute
// value, or -1 when n <= 0. Ties resolve to the lowest index.
func RefIdamax(n int, x []float64, incX int) int {
	if n <= 0 || incX <= 0 {
		return -1
	}
	best, bestIdx := math.Abs(x[0]), 0
	for i := 1; i < n; i++ {
		if v := math.Abs(x[i*incX]); v > best {
			best, bestIdx = v, i
		}
	}
	return bestIdx
}

// RefDcopy copies x into y over n elements.
func RefDcopy(n int, x []float64, incX int, y []float64, incY int) {
	if n <= 0 {
		return
	}
	kx, ky := vecStart(n, incX), vecStart(n, incY)
	for i := 0; i < n; i++ {
		y[ky+i*incY] = x[kx+i*incX]
	}
}

// RefDswap exchanges x and y over n elements.
func RefDswap(n int, x []float64, incX int, y []float64, incY int) {
	if n <= 0 {
		return
	}
	kx, ky := vecStart(n, incX), vecStart(n, incY)
	for i := 0; i < n; i++ {
		x[kx+i*incX], y[ky+i*incY] = y[ky+i*incY], x[kx+i*incX]
	}
}

// RefDrot applies the plane rotation (c, s) to x and y.
func RefDrot(n int, x []float64, incX int, y []float64, incY int, c, s float64) {
	if n <= 0 {
		return
	}
	kx, ky := vecStart(n, incX), vecStart(n, incY)
	for i := 0; i < n; i++ {
		xi, yi := x[kx+i*incX], y[ky+i*incY]
		x[kx+i*incX] = c*xi + s*yi
		y[ky+i*incY] = c*yi - s*xi
	}
}
