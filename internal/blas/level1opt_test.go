package blas

import (
	"math"
	"math/rand"
	"testing"
)

// Large enough to cross the parallel threshold.
const bigN = 1<<16 + 123

func TestOptDdotMatchesRef(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	x := randSlice64(r, bigN)
	y := randSlice64(r, bigN)
	want := RefDdot(bigN, x, 1, y, 1)
	got := OptDdot(bigN, x, 1, y, 1)
	if math.Abs(got-want) > 1e-9*math.Abs(want) {
		t.Fatalf("dot %g vs %g", got, want)
	}
	// Small sizes (serial path) and strided fall-back.
	if OptDdot(3, x, 1, y, 1) != dotSerial64(x[:3], y[:3]) { //blobvet:allow floatcompare -- small n takes the identical serial code path; equality asserts delegation
		t.Fatal("small dot")
	}
	if OptDdot(100, x, 2, y, 1) != RefDdot(100, x, 2, y, 1) { //blobvet:allow floatcompare -- strided input falls back to the reference kernel; equality asserts delegation
		t.Fatal("strided dot should match ref")
	}
	if OptDdot(0, x, 1, y, 1) != 0 {
		t.Fatal("n=0")
	}
}

func TestOptDdotDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	x := randSlice64(r, bigN)
	y := randSlice64(r, bigN)
	a := OptDdot(bigN, x, 1, y, 1)
	b := OptDdot(bigN, x, 1, y, 1)
	if a != b { //blobvet:allow floatcompare -- run-to-run determinism of the parallel reduction is the property under test
		t.Fatalf("parallel dot not deterministic: %g vs %g", a, b)
	}
}

func TestOptDaxpyMatchesRef(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	x := randSlice64(r, bigN)
	y0 := randSlice64(r, bigN)
	yRef := append([]float64(nil), y0...)
	yOpt := append([]float64(nil), y0...)
	RefDaxpy(bigN, 1.5, x, 1, yRef, 1)
	OptDaxpy(bigN, 1.5, x, 1, yOpt, 1)
	if d := maxDiff64(yRef, yOpt); d != 0 {
		t.Fatalf("axpy diff %g", d)
	}
	OptDaxpy(bigN, 0, x, 1, yOpt, 1) // alpha=0 no-op
	if d := maxDiff64(yRef, yOpt); d != 0 {
		t.Fatal("alpha=0 modified y")
	}
}

func TestOptDscal(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	x0 := randSlice64(r, bigN)
	xRef := append([]float64(nil), x0...)
	xOpt := append([]float64(nil), x0...)
	RefDscal(bigN, -2.5, xRef, 1)
	OptDscal(bigN, -2.5, xOpt, 1)
	if d := maxDiff64(xRef, xOpt); d != 0 {
		t.Fatalf("scal diff %g", d)
	}
}

func TestOptDasum(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	x := randSlice64(r, bigN)
	want := RefDasum(bigN, x, 1)
	got := OptDasum(bigN, x, 1)
	if math.Abs(got-want) > 1e-9*want {
		t.Fatalf("asum %g vs %g", got, want)
	}
}

func TestOptDnrm2(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	x := randSlice64(r, bigN)
	want := RefDnrm2(bigN, x, 1)
	got := OptDnrm2(bigN, x, 1)
	if math.Abs(got-want) > 1e-9*want {
		t.Fatalf("nrm2 %g vs %g", got, want)
	}
	// Overflow guard carries over to the parallel path.
	huge := make([]float64, bigN)
	for i := range huge {
		huge[i] = 1e300
	}
	got = OptDnrm2(bigN, huge, 1)
	if math.IsInf(got, 0) || math.IsNaN(got) {
		t.Fatalf("parallel nrm2 overflowed: %g", got)
	}
	want = 1e300 * math.Sqrt(float64(bigN))
	if math.Abs(got-want) > 1e-9*want {
		t.Fatalf("parallel nrm2 %g, want %g", got, want)
	}
	// All zeros.
	zero := make([]float64, bigN)
	if OptDnrm2(bigN, zero, 1) != 0 {
		t.Fatal("nrm2 of zeros")
	}
}

func TestOptIdamax(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	x := randSlice64(r, bigN)
	// Plant the max deep in the vector.
	x[bigN-7] = 100
	if got := OptIdamax(bigN, x, 1); got != bigN-7 {
		t.Fatalf("idamax = %d, want %d", got, bigN-7)
	}
	// Tie resolution: lowest index wins, also across worker boundaries.
	x[3] = -100
	if got := OptIdamax(bigN, x, 1); got != 3 {
		t.Fatalf("idamax tie = %d, want 3", got)
	}
	if OptIdamax(0, x, 1) != -1 {
		t.Fatal("n=0")
	}
	if OptIdamax(bigN/2, x, 2) != RefIdamax(bigN/2, x, 2) {
		t.Fatal("strided idamax should match ref")
	}
}

func TestOptLevel1SingleThreadEquivalence(t *testing.T) {
	old := Threads()
	defer SetThreads(old)
	r := rand.New(rand.NewSource(8))
	x := randSlice64(r, bigN)
	y := randSlice64(r, bigN)
	SetThreads(8)
	d8 := OptDdot(bigN, x, 1, y, 1)
	n8 := OptDnrm2(bigN, x, 1)
	SetThreads(1)
	d1 := OptDdot(bigN, x, 1, y, 1)
	n1 := OptDnrm2(bigN, x, 1)
	if math.Abs(d8-d1) > 1e-9*math.Abs(d1) {
		t.Fatalf("dot thread sensitivity: %g vs %g", d8, d1)
	}
	if math.Abs(n8-n1) > 1e-9*n1 {
		t.Fatalf("nrm2 thread sensitivity: %g vs %g", n8, n1)
	}
}
