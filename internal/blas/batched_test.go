package blas

import (
	"math/rand"
	"testing"
)

func TestDgemmBatchedMatchesLoop(t *testing.T) {
	r := rand.New(rand.NewSource(30))
	const batch = 17
	items := make([]DgemmBatchItem, batch)
	want := make([][]float64, batch)
	for i := range items {
		m, n, k := 1+r.Intn(20), 1+r.Intn(20), 1+r.Intn(20)
		a := randSlice64(r, m*k)
		b := randSlice64(r, k*n)
		c := randSlice64(r, m*n)
		want[i] = append([]float64(nil), c...)
		RefDgemm(NoTrans, NoTrans, m, n, k, 1.5, a, m, b, k, 0.5, want[i], m)
		items[i] = DgemmBatchItem{
			TransA: NoTrans, TransB: NoTrans, M: m, N: n, K: k,
			Alpha: 1.5, A: a, Lda: m, B: b, Ldb: k, Beta: 0.5, C: c, Ldc: m,
		}
	}
	DgemmBatched(items)
	for i := range items {
		if d := maxDiff64(items[i].C, want[i]); d > 1e-11 {
			t.Fatalf("batch item %d: diff %g", i, d)
		}
	}
}

func TestSgemmBatchedMatchesLoop(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	const batch = 9
	items := make([]SgemmBatchItem, batch)
	want := make([][]float32, batch)
	for i := range items {
		m, n, k := 1+r.Intn(16), 1+r.Intn(16), 1+r.Intn(16)
		a := randSlice32(r, m*k)
		b := randSlice32(r, k*n)
		c := randSlice32(r, m*n)
		want[i] = append([]float32(nil), c...)
		RefSgemm(NoTrans, NoTrans, m, n, k, 2, a, m, b, k, 1, want[i], m)
		items[i] = SgemmBatchItem{
			TransA: NoTrans, TransB: NoTrans, M: m, N: n, K: k,
			Alpha: 2, A: a, Lda: m, B: b, Ldb: k, Beta: 1, C: c, Ldc: m,
		}
	}
	SgemmBatched(items)
	for i := range items {
		if d := maxDiff32(items[i].C, want[i]); d > 1e-3 {
			t.Fatalf("batch item %d: diff %g", i, d)
		}
	}
}

func TestDgemmStridedBatched(t *testing.T) {
	r := rand.New(rand.NewSource(32))
	m, n, k, batch := 8, 6, 5, 11
	a := randSlice64(r, m*k*batch)
	b := randSlice64(r, k*n*batch)
	c := make([]float64, m*n*batch)
	want := make([]float64, m*n*batch)
	for i := 0; i < batch; i++ {
		RefDgemm(NoTrans, NoTrans, m, n, k, 1, a[i*m*k:], m, b[i*k*n:], k, 0, want[i*m*n:], m)
	}
	DgemmStridedBatched(NoTrans, NoTrans, m, n, k, 1, a, m, m*k, b, k, k*n, 0, c, m, m*n, batch)
	if d := maxDiff64(c, want); d > 1e-11 {
		t.Fatalf("strided batch diff %g", d)
	}
}

func TestSgemmStridedBatched(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	m, n, k, batch := 4, 4, 4, 6
	a := randSlice32(r, m*k*batch)
	b := randSlice32(r, k*n*batch)
	c := make([]float32, m*n*batch)
	want := make([]float32, m*n*batch)
	for i := 0; i < batch; i++ {
		RefSgemm(NoTrans, NoTrans, m, n, k, 1, a[i*m*k:], m, b[i*k*n:], k, 0, want[i*m*n:], m)
	}
	SgemmStridedBatched(NoTrans, NoTrans, m, n, k, 1, a, m, m*k, b, k, k*n, 0, c, m, m*n, batch)
	if d := maxDiff32(c, want); d > 1e-4 {
		t.Fatalf("strided batch diff %g", d)
	}
}

func TestBatchedValidatesBeforeExecuting(t *testing.T) {
	c := []float64{7}
	items := []DgemmBatchItem{
		{TransA: NoTrans, TransB: NoTrans, M: 1, N: 1, K: 1, Alpha: 1,
			A: []float64{2}, Lda: 1, B: []float64{3}, Ldb: 1, Beta: 0, C: c, Ldc: 1},
		{TransA: 'X', TransB: NoTrans, M: 1, N: 1, K: 1}, // malformed
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for malformed batch item")
		}
		if c[0] != 7 { //blobvet:allow floatcompare -- poison value: asserts C was never touched, untouched bits are exact
			t.Fatalf("batch executed before validation: c=%v", c[0])
		}
	}()
	DgemmBatched(items)
}

func TestBatchedEmpty(t *testing.T) {
	DgemmBatched(nil)
	SgemmBatched(nil)
}

func TestStridedBatchedRejectsBadGeometry(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	a := make([]float64, 8)
	mustPanic("negative batchCount", func() {
		DgemmStridedBatched(NoTrans, NoTrans, 2, 2, 2, 1, a, 2, 4, a, 2, 4, 0, a, 2, 4, -1)
	})
	mustPanic("negative stride", func() {
		DgemmStridedBatched(NoTrans, NoTrans, 2, 2, 2, 1, a, 2, -4, a, 2, 4, 0, a, 2, 4, 2)
	})
	s := make([]float32, 8)
	mustPanic("negative batchCount (f32)", func() {
		SgemmStridedBatched(NoTrans, NoTrans, 2, 2, 2, 1, s, 2, 4, s, 2, 4, 0, s, 2, 4, -1)
	})
	mustPanic("negative stride (f32)", func() {
		SgemmStridedBatched(NoTrans, NoTrans, 2, 2, 2, 1, s, 2, 4, s, 2, 4, 0, s, 2, -4, 2)
	})
}
