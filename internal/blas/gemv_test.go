package blas

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func tolGemv64(m int) float64 { return 1e-12 * float64(m+1) }
func tolGemv32(m int) float64 { return 2e-5 * float64(m+1) }

func TestOptDgemvMatchesRef(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	shapes := [][2]int{
		{1, 1}, {2, 3}, {4, 4}, {7, 5}, {16, 16}, {17, 33},
		{64, 64}, {100, 3}, {3, 100}, {512, 32}, {32, 512}, {1023, 1025},
	}
	coeffs := [][2]float64{{1, 0}, {1, 1}, {-2, 0.5}, {0, 3}}
	for _, sh := range shapes {
		m, n := sh[0], sh[1]
		for _, tr := range []Transpose{NoTrans, Trans} {
			for _, ab := range coeffs {
				alpha, beta := ab[0], ab[1]
				lda := m + 1
				a := randSlice64(r, lda*n)
				xLen := lenGemvX(tr, m, n)
				yLen := lenGemvY(tr, m, n)
				x := randSlice64(r, xLen)
				y := randSlice64(r, yLen)
				yRef := append([]float64(nil), y...)
				yOpt := append([]float64(nil), y...)
				RefDgemv(tr, m, n, alpha, a, lda, x, 1, beta, yRef, 1)
				OptDgemv(tr, m, n, alpha, a, lda, x, 1, beta, yOpt, 1)
				if d := maxDiff64(yRef, yOpt); d > tolGemv64(max(m, n)) {
					t.Fatalf("dgemv %dx%d tr=%c alpha=%v beta=%v: diff %g", m, n, tr, alpha, beta, d)
				}
			}
		}
	}
}

func TestOptSgemvMatchesRef(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	shapes := [][2]int{{1, 1}, {5, 9}, {33, 17}, {128, 128}, {1000, 10}, {10, 1000}}
	for _, sh := range shapes {
		m, n := sh[0], sh[1]
		for _, tr := range []Transpose{NoTrans, Trans} {
			a := randSlice32(r, m*n)
			xLen := lenGemvX(tr, m, n)
			yLen := lenGemvY(tr, m, n)
			x := randSlice32(r, xLen)
			y := randSlice32(r, yLen)
			yRef := append([]float32(nil), y...)
			yOpt := append([]float32(nil), y...)
			RefSgemv(tr, m, n, 1.25, a, m, x, 1, 0.75, yRef, 1)
			OptSgemv(tr, m, n, 1.25, a, m, x, 1, 0.75, yOpt, 1)
			if d := maxDiff32(yRef, yOpt); d > tolGemv32(max(m, n)) {
				t.Fatalf("sgemv %dx%d tr=%c: diff %g", m, n, tr, d)
			}
		}
	}
}

func TestGemvStridedFallsBackCorrectly(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	m, n := 23, 31
	a := randSlice64(r, m*n)
	x := randSlice64(r, 3*n)
	y := randSlice64(r, 2*m)
	yRef := append([]float64(nil), y...)
	yOpt := append([]float64(nil), y...)
	RefDgemv(NoTrans, m, n, 2, a, m, x, 3, 1, yRef, 2)
	OptDgemv(NoTrans, m, n, 2, a, m, x, 3, 1, yOpt, 2)
	if d := maxDiff64(yRef, yOpt); d > 1e-12 {
		t.Fatalf("strided gemv diff %g", d)
	}
}

func TestGemvNegativeIncrements(t *testing.T) {
	// With incX = -1, logical element 0 is at the buffer's end (BLAS
	// convention); verify against an explicitly reversed vector.
	m, n := 4, 3
	a := []float64{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
	}
	x := []float64{1, 2, 3}    // logical x = [3, 2, 1] with inc=-1
	xRev := []float64{3, 2, 1} // same thing with inc=+1
	y1 := make([]float64, m)
	y2 := make([]float64, m)
	RefDgemv(NoTrans, m, n, 1, a, m, x, -1, 0, y1, 1)
	RefDgemv(NoTrans, m, n, 1, a, m, xRev, 1, 0, y2, 1)
	if d := maxDiff64(y1, y2); d > 1e-15 {
		t.Fatalf("negative increment mismatch: %v vs %v", y1, y2)
	}
}

func TestGemvBetaZeroIgnoresY(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	m, n := 40, 30
	a := randSlice64(r, m*n)
	x := randSlice64(r, n)
	y := make([]float64, m)
	for _, f := range []func(){
		func() { RefDgemv(NoTrans, m, n, 1, a, m, x, 1, 0, y, 1) },
		func() { OptDgemv(NoTrans, m, n, 1, a, m, x, 1, 0, y, 1) },
	} {
		for i := range y {
			y[i] = math.NaN()
		}
		f()
		for i, v := range y {
			if math.IsNaN(v) {
				t.Fatalf("beta=0 read y at %d", i)
			}
		}
	}
}

// Property: gemv(Trans) on A equals gemv(NoTrans) on an explicitly
// transposed copy of A.
func TestDgemvTransposeConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		m, n := 1+rr.Intn(40), 1+rr.Intn(40)
		a := randSlice64(rr, m*n)
		at := make([]float64, n*m)
		for j := 0; j < n; j++ {
			for i := 0; i < m; i++ {
				at[j+i*n] = a[i+j*m]
			}
		}
		x := randSlice64(rr, m)
		y1 := make([]float64, n)
		y2 := make([]float64, n)
		OptDgemv(Trans, m, n, 1, a, m, x, 1, 0, y1, 1)
		OptDgemv(NoTrans, n, m, 1, at, n, x, 1, 0, y2, 1)
		return maxDiff64(y1, y2) <= tolGemv64(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: gemv distributes over vector addition in x.
func TestDgemvAdditivity(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		m, n := 1+rr.Intn(32), 1+rr.Intn(32)
		a := randSlice64(rr, m*n)
		x1 := randSlice64(rr, n)
		x2 := randSlice64(rr, n)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = x1[i] + x2[i]
		}
		ySum := make([]float64, m)
		yParts := make([]float64, m)
		OptDgemv(NoTrans, m, n, 1, a, m, xs, 1, 0, ySum, 1)
		OptDgemv(NoTrans, m, n, 1, a, m, x1, 1, 0, yParts, 1)
		OptDgemv(NoTrans, m, n, 1, a, m, x2, 1, 1, yParts, 1)
		return maxDiff64(ySum, yParts) <= tolGemv64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// GEMV must agree with GEMM on an n-vector treated as an n x 1 matrix.
func TestGemvAgreesWithGemm(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	m, n := 57, 43
	a := randSlice64(r, m*n)
	x := randSlice64(r, n)
	yGemv := make([]float64, m)
	yGemm := make([]float64, m)
	OptDgemv(NoTrans, m, n, 1, a, m, x, 1, 0, yGemv, 1)
	OptDgemm(NoTrans, NoTrans, m, 1, n, 1, a, m, x, n, 0, yGemm, m)
	if d := maxDiff64(yGemv, yGemm); d > tolGemv64(n) {
		t.Fatalf("gemv vs gemm diff %g", d)
	}
}

func TestGemvZeroDims(t *testing.T) {
	y := []float64{7}
	// n == 0, beta=2: y scales.
	OptDgemv(NoTrans, 1, 0, 1, []float64{1}, 1, nil, 1, 2, y, 1)
	if y[0] != 14 { //blobvet:allow floatcompare -- 7*2 is exact in IEEE-754; asserts the beta scaling path exactly
		t.Fatalf("n=0 gemv should scale y, got %v", y[0])
	}
	// m == 0: nothing to do, must not panic.
	OptDgemv(NoTrans, 0, 5, 1, make([]float64, 5), 1, make([]float64, 5), 1, 0, nil, 1)
}
