// Package advisor turns GPU-BLOB's models into the decision tool the paper
// sketches in §III-D: "by relating an application's matrix/vector shape and
// size to those evaluated by GPU-BLOB, configuring the iteration count to
// approximate the number of BLAS kernel computations, and relating the data
// movement characteristics to one of the data transfer types, a user can
// assess whether it would be worth porting their application to use a GPU".
//
// It consumes a trace of BLAS call groups (kernel, shape, precision,
// back-to-back call count, data-movement pattern) and reports, per system,
// the CPU and GPU times, the better device, and the speedup — including the
// caveat the paper raises in §V: a threshold alone does not say by how
// much, so the advisor always quantifies.
package advisor

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/flops"
	"repro/internal/sim/systems"
	"repro/internal/sim/xfer"
)

// Call is one group of identical BLAS calls in an application trace. It
// is the typed request model shared by cmd/blob-advise and the serving
// layer (internal/service): kernel and precision use core's enums, and
// the stringly CSV/JSON spellings are mapped at the parse boundary
// (ReadTrace here, request decoding in the service).
type Call struct {
	// Kernel is the BLAS kernel family (core.GEMM or core.GEMV).
	Kernel core.KernelKind
	// M, N, K are the dimensions (K ignored for GEMV).
	M, N, K int
	// Precision selects the element type (core.F32 or core.F64).
	Precision core.Precision
	// Count is how many times the call repeats back to back on the same
	// operands (GPU-BLOB's iteration count).
	Count int
	// Strategy is the data-movement pattern the application would use.
	Strategy xfer.Strategy
}

// Validate reports whether the call is well-formed.
func (c Call) Validate() error {
	switch c.Kernel {
	case core.GEMM:
		if c.K < 1 {
			return fmt.Errorf("advisor: gemm needs k >= 1, got %d", c.K)
		}
	case core.GEMV:
	default:
		return fmt.Errorf("advisor: unknown kernel %v", c.Kernel)
	}
	if c.Precision != core.F32 && c.Precision != core.F64 {
		return fmt.Errorf("advisor: unknown precision %v", c.Precision)
	}
	if c.M < 1 || c.N < 1 {
		return fmt.Errorf("advisor: dimensions must be >= 1, got m=%d n=%d", c.M, c.N)
	}
	if c.Count < 1 {
		return fmt.Errorf("advisor: count must be >= 1, got %d", c.Count)
	}
	return nil
}

// KernelName returns the BLAS-style name of the call, e.g. "SGEMM".
func (c Call) KernelName() string { return core.KernelName(c.Precision, c.Kernel) }

// Flops returns the exact per-call FLOP count (§III-A model, beta = 0).
func (c Call) Flops() int64 {
	if c.Kernel == core.GEMV {
		return flops.Gemv(c.M, c.N, flops.Beta{IsZero: true})
	}
	return flops.Gemm(c.M, c.N, c.K, flops.Beta{IsZero: true})
}

// Verdict is the advice for one call group on one system.
type Verdict struct {
	Call       Call
	System     string
	CPUSeconds float64
	GPUSeconds float64
	// Offload is true when the GPU (including data movement) wins.
	Offload bool
	// Speedup is CPU/GPU time (values < 1 mean the CPU wins).
	Speedup float64
}

// Times evaluates the two timing models for one validated call: the total
// modeled CPU seconds and GPU seconds (data movement included) for the
// call group's Count iterations. It is the allocation-free core of Advise,
// exposed for per-call consumers — internal/offload's dispatcher sits on
// this path for every BLAS invocation it routes, where a Verdict value
// per call would be pure overhead.
//
//blobvet:hotpath
func Times(sys systems.System, c Call) (cpuSeconds, gpuSeconds float64) {
	es := c.Precision.ElemSize()
	if c.Kernel == core.GEMV {
		cpuSeconds = sys.CPU.GemvSeconds(es, c.M, c.N, true, c.Count)
		gpuSeconds = sys.GPU.GemvSeconds(c.Strategy, es, c.M, c.N, true, c.Count)
		return cpuSeconds, gpuSeconds
	}
	cpuSeconds = sys.CPU.GemmSeconds(es, c.M, c.N, c.K, true, c.Count)
	gpuSeconds = sys.GPU.GemmSeconds(c.Strategy, es, c.M, c.N, c.K, true, c.Count)
	return cpuSeconds, gpuSeconds
}

// Advise evaluates one call group on one system.
func Advise(sys systems.System, c Call) (Verdict, error) {
	if err := c.Validate(); err != nil {
		return Verdict{}, err
	}
	cpu, gpu := Times(sys, c)
	return Verdict{
		Call: c, System: sys.Name,
		CPUSeconds: cpu, GPUSeconds: gpu,
		Offload: gpu < cpu,
		Speedup: cpu / gpu,
	}, nil
}

// AdviseAll evaluates every call on every system, preserving order.
func AdviseAll(syss []systems.System, calls []Call) ([]Verdict, error) {
	out := make([]Verdict, 0, len(syss)*len(calls))
	for _, c := range calls {
		for _, sys := range syss {
			v, err := Advise(sys, c)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
	}
	return out, nil
}

// Summary aggregates verdicts for one system over a whole trace.
type Summary struct {
	System string
	// AllCPU / AllGPU are the total trace times with every call on one
	// device.
	AllCPU, AllGPU float64
	// Mixed is the total with each call on its better device (the paper's
	// per-call offload decision).
	Mixed float64
	// OffloadedCalls counts the call groups the advisor sends to the GPU.
	OffloadedCalls int
}

// Summarize folds verdicts into per-system totals.
func Summarize(verdicts []Verdict) []Summary {
	idx := map[string]int{}
	var out []Summary
	for _, v := range verdicts {
		i, ok := idx[v.System]
		if !ok {
			i = len(out)
			idx[v.System] = i
			out = append(out, Summary{System: v.System})
		}
		out[i].AllCPU += v.CPUSeconds
		out[i].AllGPU += v.GPUSeconds
		if v.Offload {
			out[i].Mixed += v.GPUSeconds
			out[i].OffloadedCalls++
		} else {
			out[i].Mixed += v.CPUSeconds
		}
	}
	return out
}

// --- trace files ------------------------------------------------------------

// TraceHeader is the column layout of an advisor trace CSV:
//
//	kernel,m,n,k,precision,count,movement
//	gemm,2048,2048,64,f64,32,once
//	gemv,4096,4096,0,f32,128,always
var TraceHeader = []string{"kernel", "m", "n", "k", "precision", "count", "movement"}

// ReadTrace parses a trace CSV (header required, '#' comment lines allowed).
func ReadTrace(r io.Reader) ([]Call, error) {
	cr := csv.NewReader(r)
	cr.Comment = '#'
	cr.FieldsPerRecord = len(TraceHeader)
	var calls []Call
	first := true
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return calls, nil
		}
		if err != nil {
			return nil, err
		}
		if first {
			first = false
			if strings.EqualFold(rec[0], "kernel") {
				continue
			}
		}
		c, err := parseTraceRow(rec)
		if err != nil {
			return nil, err
		}
		calls = append(calls, c)
	}
}

// parseTraceRow maps one stringly CSV record onto the typed Call model.
// The trace format itself is unchanged; this is the sole place its
// spellings are interpreted.
func parseTraceRow(rec []string) (Call, error) {
	var c Call
	var err error
	if c.Kernel, err = core.ParseKernelKind(rec[0]); err != nil {
		return c, fmt.Errorf("advisor: bad kernel %q", rec[0])
	}
	if c.M, err = strconv.Atoi(strings.TrimSpace(rec[1])); err != nil {
		return c, fmt.Errorf("advisor: bad m %q", rec[1])
	}
	if c.N, err = strconv.Atoi(strings.TrimSpace(rec[2])); err != nil {
		return c, fmt.Errorf("advisor: bad n %q", rec[2])
	}
	if c.K, err = strconv.Atoi(strings.TrimSpace(rec[3])); err != nil {
		return c, fmt.Errorf("advisor: bad k %q", rec[3])
	}
	if c.Precision, err = core.ParsePrecision(rec[4]); err != nil {
		return c, fmt.Errorf("advisor: bad precision %q", rec[4])
	}
	if c.Count, err = strconv.Atoi(strings.TrimSpace(rec[5])); err != nil {
		return c, fmt.Errorf("advisor: bad count %q", rec[5])
	}
	st, err := xfer.ParseStrategy(strings.TrimSpace(rec[6]))
	if err != nil {
		return c, err
	}
	c.Strategy = st
	return c, c.Validate()
}
