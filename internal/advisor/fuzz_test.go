package advisor

import (
	"bytes"
	"testing"
)

// FuzzReadTrace feeds arbitrary bytes through the trace-CSV reader. The
// parser sits on the service's untrusted edge (blob-advise -trace takes
// user files), so the invariants are: never panic, and every Call that
// survives parsing also passes its own Validate — a row cannot sneak
// past the row parser in a state the planner would choke on.
func FuzzReadTrace(f *testing.F) {
	f.Add([]byte("kernel,m,n,k,precision,count,movement\ngemm,2048,2048,64,f64,32,once\n"))
	f.Add([]byte("kernel,m,n,k,precision,count,movement\ngemv,4096,4096,0,f32,128,always\n"))
	f.Add([]byte("# comment\nkernel,m,n,k,precision,count,movement\n"))
	f.Add([]byte("gemm,1,1,1,f64,1,once"))
	f.Add([]byte(""))
	f.Add([]byte("kernel,m,n,k,precision,count,movement\ngemm,-3,0,x,f16,,never\n"))
	f.Add([]byte("kernel,m,n,k,precision,count,movement\r\ngemm, 2048 ,2048,64,F64,32,ONCE\r\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		calls, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			return // rejected input is fine; crashing on it is not
		}
		for i, c := range calls {
			if verr := c.Validate(); verr != nil {
				t.Fatalf("ReadTrace accepted row %d that fails Validate: %+v: %v", i, c, verr)
			}
		}
	})
}
