package advisor_test

import (
	"fmt"

	"repro/internal/advisor"
	"repro/internal/core"
	"repro/internal/sim/systems"
	"repro/internal/sim/xfer"
)

// ExampleAdvise asks the §III-D question directly from Go: should a group
// of 32 back-to-back SGEMM calls at {2048, 2048, 2048} be offloaded on the
// GH200, if the data is transferred once? The same decision is available
// over CSV via cmd/blob-advise and over HTTP via blob-served.
func ExampleAdvise() {
	v, err := advisor.Advise(systems.IsambardAI(), advisor.Call{
		Kernel:    core.GEMM,
		M:         2048, N: 2048, K: 2048,
		Precision: core.F32,
		Count:     32,
		Strategy:  xfer.TransferOnce,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s: offload=%v speedup=%.1fx\n", v.System, v.Offload, v.Speedup)
	// Output: Isambard-AI: offload=true speedup=8.3x
}
