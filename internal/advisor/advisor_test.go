package advisor

import (
	"strings"
	"testing"

	"repro/internal/sim/systems"
	"repro/internal/sim/xfer"
)

func TestCallValidate(t *testing.T) {
	good := Call{Kernel: "gemm", M: 10, N: 10, K: 10, ElemSize: 8, Count: 1}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Call{
		{Kernel: "trsm", M: 1, N: 1, K: 1, ElemSize: 8, Count: 1},
		{Kernel: "gemm", M: 0, N: 1, K: 1, ElemSize: 8, Count: 1},
		{Kernel: "gemm", M: 1, N: 1, K: 0, ElemSize: 8, Count: 1},
		{Kernel: "gemm", M: 1, N: 1, K: 1, ElemSize: 2, Count: 1},
		{Kernel: "gemm", M: 1, N: 1, K: 1, ElemSize: 8, Count: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("case %d should be invalid: %+v", i, c)
		}
	}
	// gemv ignores K.
	gv := Call{Kernel: "gemv", M: 10, N: 10, ElemSize: 4, Count: 1}
	if err := gv.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAdviseDirections(t *testing.T) {
	isam := systems.IsambardAI()
	// A big, high-reuse square GEMM must offload on the GH200.
	v, err := Advise(isam, Call{Kernel: "gemm", M: 2048, N: 2048, K: 2048, ElemSize: 4, Count: 32, Strategy: xfer.TransferOnce})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Offload || v.Speedup <= 1 {
		t.Fatalf("large GEMM should offload on GH200: %+v", v)
	}
	// A tiny single-shot GEMM must not.
	v, _ = Advise(isam, Call{Kernel: "gemv", M: 8, N: 8, ElemSize: 8, Count: 1, Strategy: xfer.TransferAlways})
	if v.Offload {
		t.Fatalf("tiny gemv should stay on CPU: %+v", v)
	}
	// Verdict internals are consistent.
	if v.Offload != (v.GPUSeconds < v.CPUSeconds) {
		t.Fatal("offload flag inconsistent with times")
	}
}

func TestAdviseAllAndSummarize(t *testing.T) {
	calls := []Call{
		{Kernel: "gemm", M: 1024, N: 1024, K: 1024, ElemSize: 8, Count: 16, Strategy: xfer.TransferOnce},
		{Kernel: "gemv", M: 512, N: 512, ElemSize: 8, Count: 1, Strategy: xfer.TransferAlways},
	}
	verdicts, err := AdviseAll(systems.All(), calls)
	if err != nil {
		t.Fatal(err)
	}
	if len(verdicts) != 6 {
		t.Fatalf("verdicts = %d", len(verdicts))
	}
	sums := Summarize(verdicts)
	if len(sums) != 3 {
		t.Fatalf("summaries = %d", len(sums))
	}
	for _, s := range sums {
		// Mixed placement can never lose to either single-device plan.
		if s.Mixed > s.AllCPU+1e-15 || s.Mixed > s.AllGPU+1e-15 {
			t.Fatalf("%s: mixed %g worse than single-device (cpu %g, gpu %g)",
				s.System, s.Mixed, s.AllCPU, s.AllGPU)
		}
		if s.OffloadedCalls < 0 || s.OffloadedCalls > len(calls) {
			t.Fatalf("%s: offloaded %d of %d", s.System, s.OffloadedCalls, len(calls))
		}
	}
}

func TestReadTrace(t *testing.T) {
	src := `kernel,m,n,k,precision,count,movement
# an attention-style projection
gemm,2048,2048,64,f64,32,once
gemv,4096,4096,0,f32,128,always
gemm,512,512,512,single,8,usm
`
	calls, err := ReadTrace(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != 3 {
		t.Fatalf("calls = %d", len(calls))
	}
	if calls[0].Kernel != "gemm" || calls[0].K != 64 || calls[0].ElemSize != 8 || calls[0].Strategy != xfer.TransferOnce {
		t.Fatalf("call 0: %+v", calls[0])
	}
	if calls[1].Kernel != "gemv" || calls[1].ElemSize != 4 || calls[1].Strategy != xfer.TransferAlways {
		t.Fatalf("call 1: %+v", calls[1])
	}
	if calls[2].ElemSize != 4 || calls[2].Strategy != xfer.Unified {
		t.Fatalf("call 2: %+v", calls[2])
	}
}

func TestReadTraceErrors(t *testing.T) {
	cases := []string{
		"kernel,m,n,k,precision,count,movement\ngemm,x,1,1,f64,1,once\n",
		"kernel,m,n,k,precision,count,movement\ngemm,1,1,1,f16,1,once\n",
		"kernel,m,n,k,precision,count,movement\ngemm,1,1,1,f64,1,sometimes\n",
		"kernel,m,n,k,precision,count,movement\nspmm,1,1,1,f64,1,once\n",
	}
	for i, src := range cases {
		if _, err := ReadTrace(strings.NewReader(src)); err == nil {
			t.Fatalf("case %d should fail", i)
		}
	}
}

func TestCallFlops(t *testing.T) {
	c := Call{Kernel: "gemm", M: 2, N: 3, K: 4, ElemSize: 8, Count: 1}
	if got := c.Flops(); got != 2*2*3*4+2*3 {
		t.Fatalf("gemm flops = %d", got)
	}
	c = Call{Kernel: "gemv", M: 3, N: 4, ElemSize: 8, Count: 1}
	if got := c.Flops(); got != 2*3*4+3 {
		t.Fatalf("gemv flops = %d", got)
	}
}
