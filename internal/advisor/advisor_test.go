package advisor

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sim/systems"
	"repro/internal/sim/xfer"
)

func TestCallValidate(t *testing.T) {
	good := Call{Kernel: core.GEMM, M: 10, N: 10, K: 10, Precision: core.F64, Count: 1}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Call{
		{Kernel: core.KernelKind(7), M: 1, N: 1, K: 1, Precision: core.F64, Count: 1},
		{Kernel: core.GEMM, M: 0, N: 1, K: 1, Precision: core.F64, Count: 1},
		{Kernel: core.GEMM, M: 1, N: 1, K: 0, Precision: core.F64, Count: 1},
		{Kernel: core.GEMM, M: 1, N: 1, K: 1, Precision: core.Precision(9), Count: 1},
		{Kernel: core.GEMM, M: 1, N: 1, K: 1, Precision: core.F64, Count: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("case %d should be invalid: %+v", i, c)
		}
	}
	// GEMV ignores K.
	gv := Call{Kernel: core.GEMV, M: 10, N: 10, Precision: core.F32, Count: 1}
	if err := gv.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := gv.KernelName(); got != "SGEMV" {
		t.Fatalf("KernelName = %q", got)
	}
}

func TestAdviseDirections(t *testing.T) {
	isam := systems.IsambardAI()
	// A big, high-reuse square GEMM must offload on the GH200.
	v, err := Advise(isam, Call{Kernel: core.GEMM, M: 2048, N: 2048, K: 2048, Precision: core.F32, Count: 32, Strategy: xfer.TransferOnce})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Offload || v.Speedup <= 1 {
		t.Fatalf("large GEMM should offload on GH200: %+v", v)
	}
	// A tiny single-shot GEMV must not.
	v, _ = Advise(isam, Call{Kernel: core.GEMV, M: 8, N: 8, Precision: core.F64, Count: 1, Strategy: xfer.TransferAlways})
	if v.Offload {
		t.Fatalf("tiny gemv should stay on CPU: %+v", v)
	}
	// Verdict internals are consistent.
	if v.Offload != (v.GPUSeconds < v.CPUSeconds) {
		t.Fatal("offload flag inconsistent with times")
	}
}

func TestAdviseAllAndSummarize(t *testing.T) {
	calls := []Call{
		{Kernel: core.GEMM, M: 1024, N: 1024, K: 1024, Precision: core.F64, Count: 16, Strategy: xfer.TransferOnce},
		{Kernel: core.GEMV, M: 512, N: 512, Precision: core.F64, Count: 1, Strategy: xfer.TransferAlways},
	}
	verdicts, err := AdviseAll(systems.All(), calls)
	if err != nil {
		t.Fatal(err)
	}
	if len(verdicts) != 6 {
		t.Fatalf("verdicts = %d", len(verdicts))
	}
	sums := Summarize(verdicts)
	if len(sums) != 3 {
		t.Fatalf("summaries = %d", len(sums))
	}
	for _, s := range sums {
		// Mixed placement can never lose to either single-device plan.
		if s.Mixed > s.AllCPU+1e-15 || s.Mixed > s.AllGPU+1e-15 {
			t.Fatalf("%s: mixed %g worse than single-device (cpu %g, gpu %g)",
				s.System, s.Mixed, s.AllCPU, s.AllGPU)
		}
		if s.OffloadedCalls < 0 || s.OffloadedCalls > len(calls) {
			t.Fatalf("%s: offloaded %d of %d", s.System, s.OffloadedCalls, len(calls))
		}
	}
}

func TestReadTrace(t *testing.T) {
	src := `kernel,m,n,k,precision,count,movement
# an attention-style projection
gemm,2048,2048,64,f64,32,once
gemv,4096,4096,0,f32,128,always
gemm,512,512,512,single,8,usm
`
	calls, err := ReadTrace(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != 3 {
		t.Fatalf("calls = %d", len(calls))
	}
	if calls[0].Kernel != core.GEMM || calls[0].K != 64 || calls[0].Precision != core.F64 || calls[0].Strategy != xfer.TransferOnce {
		t.Fatalf("call 0: %+v", calls[0])
	}
	if calls[1].Kernel != core.GEMV || calls[1].Precision != core.F32 || calls[1].Strategy != xfer.TransferAlways {
		t.Fatalf("call 1: %+v", calls[1])
	}
	if calls[2].Precision != core.F32 || calls[2].Strategy != xfer.Unified {
		t.Fatalf("call 2: %+v", calls[2])
	}
}

// TestReadTraceMalformedRows covers each way a row can be rejected; the
// error message must point at the offending field so traces are fixable
// from the message alone.
func TestReadTraceMalformedRows(t *testing.T) {
	cases := []struct {
		name, row, wantErr string
	}{
		{"bad m", "gemm,x,1,1,f64,1,once", "bad m"},
		{"bad n", "gemm,1,?,1,f64,1,once", "bad n"},
		{"bad k", "gemm,1,1,,f64,1,once", "bad k"},
		{"unknown precision", "gemm,1,1,1,f16,1,once", "bad precision"},
		{"bad count", "gemm,1,1,1,f64,lots,once", "bad count"},
		{"zero count", "gemm,4,4,4,f64,0,once", "count must be >= 1"},
		{"unknown movement", "gemm,1,1,1,f64,1,sometimes", "unknown strategy"},
		{"bad kernel", "spmm,1,1,1,f64,1,once", "bad kernel"},
		{"gemm zero k", "gemm,4,4,0,f64,1,once", "k >= 1"},
		{"short record", "gemm,1,1,1,f64,1", "wrong number of fields"},
		{"long record", "gemm,1,1,1,f64,1,once,extra", "wrong number of fields"},
	}
	for _, tc := range cases {
		src := "kernel,m,n,k,precision,count,movement\n" + tc.row + "\n"
		_, err := ReadTrace(strings.NewReader(src))
		if err == nil {
			t.Fatalf("%s: row %q should fail", tc.name, tc.row)
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestCallFlops(t *testing.T) {
	c := Call{Kernel: core.GEMM, M: 2, N: 3, K: 4, Precision: core.F64, Count: 1}
	if got := c.Flops(); got != 2*2*3*4+2*3 {
		t.Fatalf("gemm flops = %d", got)
	}
	c = Call{Kernel: core.GEMV, M: 3, N: 4, Precision: core.F64, Count: 1}
	if got := c.Flops(); got != 2*3*4+3 {
		t.Fatalf("gemv flops = %d", got)
	}
}
