// Package blobclient is the typed Go client for blob-served's v1 API.
// It speaks the unified envelope contract ({schema, data, error}) on
// /v1/advise, /v1/threshold and /v1/dispatch, surfaces the server's
// machine-readable error codes as *APIError values, honours Retry-After
// hints (header and error.retry_after_s agree in whole seconds; the
// client waits at least that long before a retry), and reuses
// internal/resilience for its retry backoff and circuit breaker so a
// misbehaving server is probed, not hammered.
//
// The zero-config path is one line:
//
//	c := blobclient.New(blobclient.Options{BaseURL: "http://localhost:8080"})
//	resp, err := c.Advise(ctx, service.AdviseRequest{...})
//
// The request and response types are the service package's wire types,
// so the client can never drift from the server's contract.
package blobclient

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/resilience"
	"repro/internal/service"
)

// APIError is a non-2xx answer from the service: the unified v1 error
// object plus the HTTP status it rode in on.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Code is the machine-readable failure class (queue_full, over_quota,
	// breaker_open, deadline_exceeded, bad_request, ...).
	Code string
	// Message is the human-oriented description.
	Message string
	// RetryAfter is the server's retry hint (whole seconds on the wire;
	// zero when the server sent none).
	RetryAfter time.Duration
}

// Error formats the failure with its machine-readable code first.
func (e *APIError) Error() string {
	if e.Code != "" {
		return fmt.Sprintf("blobclient: %s (%d): %s", e.Code, e.Status, e.Message)
	}
	return fmt.Sprintf("blobclient: http %d: %s", e.Status, e.Message)
}

// Transient reports whether the failure may clear on retry: shed and
// capacity statuses are retryable, client errors are not. Implementing
// resilience.Transienter is what plugs APIError into the shared retry
// policy.
func (e *APIError) Transient() bool {
	switch e.Status {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// DecodeError is a response that arrived but could not be trusted: the
// body was truncated mid-stream, failed the content-length check, was not
// the unified envelope, or carried the wrong schema token. These are wire
// integrity failures, not server verdicts — a proxy died mid-body, a
// connection was cut, a payload was corrupted — so DecodeError reports
// itself transient: the retry loop re-asks (the breaker still counts the
// failure, because a peer that keeps sending garbage is unhealthy).
type DecodeError struct {
	// Path is the request path; Status the HTTP status the broken body
	// rode in on.
	Path   string
	Status int
	// Reason is the integrity check that failed ("truncated body",
	// "non-envelope response", ...).
	Reason string
	// Err is the underlying decode/read error, when there is one.
	Err error
}

// Error formats the failure.
func (e *DecodeError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("blobclient: %s: %s (status %d): %v", e.Path, e.Reason, e.Status, e.Err)
	}
	return fmt.Sprintf("blobclient: %s: %s (status %d)", e.Path, e.Reason, e.Status)
}

// Unwrap exposes the underlying error (io.ErrUnexpectedEOF and friends).
func (e *DecodeError) Unwrap() error { return e.Err }

// Transient reports that retrying may yield an intact response
// (resilience.Transienter — this is what puts truncated and corrupted
// bodies on the retry path instead of failing the call terminally).
func (e *DecodeError) Transient() bool { return true }

// Options configures a Client. Only BaseURL is required.
type Options struct {
	// BaseURL is the server root, e.g. "http://localhost:8080".
	BaseURL string
	// HTTPClient replaces http.DefaultClient (timeouts, transports).
	HTTPClient *http.Client
	// Retry is the transient-failure retry policy. The zero value makes
	// one attempt; Retry-After hints stretch the backoff but never
	// shrink it.
	Retry resilience.RetryPolicy
	// Breaker tunes the client-side circuit breaker; the zero value
	// takes resilience.BreakerConfig's defaults. While open, calls fail
	// fast with resilience.ErrOpen instead of touching the server.
	Breaker resilience.BreakerConfig
	// APIKey, when set, is sent as X-API-Key — the server's fair-share
	// admission identity.
	APIKey string
	// DeadlineMs, when positive, is sent as X-Deadline-Ms so the server
	// sheds the request once the client would no longer be waiting.
	DeadlineMs int
}

// Client is a typed v1 API client. Safe for concurrent use.
type Client struct {
	base    string
	hc      *http.Client
	retry   resilience.RetryPolicy
	breaker *resilience.Breaker
	apiKey  string
	deadl   int
}

// New builds a Client.
func New(opts Options) *Client {
	hc := opts.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{
		base:    strings.TrimRight(opts.BaseURL, "/"),
		hc:      hc,
		retry:   opts.Retry,
		breaker: resilience.NewBreaker(opts.Breaker),
		apiKey:  opts.APIKey,
		deadl:   opts.DeadlineMs,
	}
}

// Advise evaluates a batch of call groups (POST /v1/advise).
func (c *Client) Advise(ctx context.Context, req service.AdviseRequest) (*service.AdviseResponse, error) {
	var out service.AdviseResponse
	if err := c.call(ctx, "/v1/advise", service.SchemaAdvise, req, &out, nil); err != nil {
		return nil, err
	}
	return &out, nil
}

// Threshold runs (or fetches from cache) one offload-threshold sweep
// (POST /v1/threshold).
func (c *Client) Threshold(ctx context.Context, req service.ThresholdRequest) (*service.ThresholdResponse, error) {
	var out service.ThresholdResponse
	if err := c.call(ctx, "/v1/threshold", service.SchemaThreshold, req, &out, nil); err != nil {
		return nil, err
	}
	return &out, nil
}

// ThresholdPeer is Threshold with the peer cache-fill marker
// (service.PeerFillHeader) stamped with origin, the requesting cluster
// member's name. The receiving replica answers from its own cache or
// computes locally, but never fans out another fill — the cluster's
// loop guard.
func (c *Client) ThresholdPeer(ctx context.Context, req service.ThresholdRequest, origin string) (*service.ThresholdResponse, error) {
	var out service.ThresholdResponse
	hdr := map[string]string{service.PeerFillHeader: origin}
	if err := c.call(ctx, "/v1/threshold", service.SchemaThreshold, req, &out, hdr); err != nil {
		return nil, err
	}
	return &out, nil
}

// DispatchBatch routes a batch of call shapes through the server's
// offload dispatcher (POST /v1/dispatch).
func (c *Client) DispatchBatch(ctx context.Context, req service.DispatchRequest) (*service.DispatchResponse, error) {
	var out service.DispatchResponse
	if err := c.call(ctx, "/v1/dispatch", service.SchemaDispatch, req, &out, nil); err != nil {
		return nil, err
	}
	return &out, nil
}

// Health reads the liveness endpoint (GET /healthz).
func (c *Client) Health(ctx context.Context) (*service.HealthBody, error) {
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return nil, err
	}
	var out service.HealthBody
	if err := c.roundTrip(httpReq, service.SchemaHealth, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Ready reads the readiness endpoint (GET /readyz) — distinct from
// liveness, it answers 503 code "not_ready" while the replica is
// draining or before its worker pool is armed. Cluster health checks
// and rolling restarts key off this, not /healthz.
func (c *Client) Ready(ctx context.Context) (*service.ReadyBody, error) {
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/readyz", nil)
	if err != nil {
		return nil, err
	}
	var out service.ReadyBody
	if err := c.roundTrip(httpReq, service.SchemaReady, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Metrics scrapes the Prometheus text exposition (GET /metrics).
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", &APIError{Status: resp.StatusCode, Message: string(b)}
	}
	return string(b), nil
}

// call POSTs one request with the client's breaker and retry policy.
// The breaker sits inside the retry loop so every attempt records an
// outcome; resilience.IsTransient decides retryability (APIError
// implements Transienter), and a server Retry-After hint raises the
// backoff floor for the next attempt.
func (c *Client) call(ctx context.Context, path, schema string, in, out any, hdr map[string]string) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	attempts := c.retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		err := c.attempt(ctx, path, body, schema, out, hdr)
		if err == nil {
			return nil
		}
		if attempt >= attempts || !resilience.IsTransient(err) {
			return err
		}
		delay := c.retry.Delay(attempt)
		var ae *APIError
		if errors.As(err, &ae) && ae.RetryAfter > delay {
			delay = ae.RetryAfter
		}
		if serr := sleep(ctx, delay); serr != nil {
			return serr
		}
	}
}

// attempt makes one breaker-guarded try. Only failures that speak to the
// server's health count against the breaker: network errors and
// transient statuses (429/5xx). A 4xx is the request's fault — recording
// it as a success keeps one buggy caller from opening the breaker for
// everyone sharing the client. Context cancellation likewise proves
// nothing about the server.
func (c *Client) attempt(ctx context.Context, path string, body []byte, schema string, out any, hdr map[string]string) error {
	if err := c.breaker.Allow(); err != nil {
		return err
	}
	err := c.post(ctx, path, body, schema, out, hdr)
	switch {
	case err == nil:
		c.breaker.Record(nil)
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		c.breaker.Record(nil)
	default:
		var ae *APIError
		if errors.As(err, &ae) && !ae.Transient() {
			c.breaker.Record(nil)
		} else {
			c.breaker.Record(err)
		}
	}
	return err
}

// sleep waits d (or returns early with the context's error).
func sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// post performs one POST attempt.
func (c *Client) post(ctx context.Context, path string, body []byte, schema string, out any, hdr map[string]string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	return c.roundTrip(req, schema, out)
}

// wireEnvelope is the client-side shape of the unified v1 envelope.
type wireEnvelope struct {
	Schema string            `json:"schema"`
	Data   json.RawMessage   `json:"data"`
	Error  *service.APIError `json:"error"`
}

// roundTrip executes one HTTP exchange and decodes the envelope.
func (c *Client) roundTrip(req *http.Request, schema string, out any) error {
	if c.apiKey != "" {
		req.Header.Set("X-API-Key", c.apiKey)
	}
	if c.deadl > 0 {
		req.Header.Set("X-Deadline-Ms", strconv.Itoa(c.deadl))
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	path, status := req.URL.Path, resp.StatusCode
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		// A body that dies mid-read (io.ErrUnexpectedEOF, a reset) is a wire
		// failure, not an answer — classified transient so the retry loop
		// and breaker both see it.
		return &DecodeError{Path: path, Status: status, Reason: "reading body", Err: err}
	}
	if resp.ContentLength >= 0 && int64(len(raw)) != resp.ContentLength {
		return &DecodeError{Path: path, Status: status,
			Reason: fmt.Sprintf("truncated body: read %d of %d declared bytes", len(raw), resp.ContentLength)}
	}
	var env wireEnvelope
	if err := json.Unmarshal(raw, &env); err != nil {
		return &DecodeError{Path: path, Status: status, Reason: "non-envelope response", Err: err}
	}
	if status != http.StatusOK {
		ae := &APIError{Status: status}
		if env.Error != nil {
			ae.Code = env.Error.Code
			ae.Message = env.Error.Message
			ae.RetryAfter = retryAfterHint(resp, env.Error)
		} else {
			ae.Message = strings.TrimSpace(string(raw))
		}
		return ae
	}
	if env.Schema != schema {
		return &DecodeError{Path: path, Status: status,
			Reason: fmt.Sprintf("schema token %q, want %q", env.Schema, schema)}
	}
	if err := json.Unmarshal(env.Data, out); err != nil {
		return &DecodeError{Path: path, Status: status, Reason: "undecodable data payload", Err: err}
	}
	return nil
}

// retryAfterHint resolves the server's retry hint, preferring the
// header (authoritative for intermediaries) and falling back to the
// JSON mirror; both are whole seconds by contract.
func retryAfterHint(resp *http.Response, e *service.APIError) time.Duration {
	if h := resp.Header.Get("Retry-After"); h != "" {
		if secs, err := strconv.Atoi(h); err == nil && secs > 0 {
			return time.Duration(secs) * time.Second
		}
	}
	return time.Duration(e.RetryAfterS) * time.Second
}
