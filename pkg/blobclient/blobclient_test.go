package blobclient

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/resilience"
	"repro/internal/service"
)

// newService stands up a real blob-served handler and a client pointed at
// it; every test runs against the actual service stack, not a mock.
func newService(t *testing.T, opts service.Options, copts Options) (*service.Server, *Client) {
	t.Helper()
	svc := service.New(opts)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() { ts.Close(); svc.Close() })
	copts.BaseURL = ts.URL
	return svc, New(copts)
}

func adviseReq() service.AdviseRequest {
	return service.AdviseRequest{
		Systems: []string{"isambard-ai"},
		Calls: []service.CallRequest{{
			Kernel: "gemm", M: 2048, N: 2048, K: 2048,
			Precision: "f32", Count: 32, Movement: "once",
		}},
	}
}

func TestAdviseRoundTrip(t *testing.T) {
	_, c := newService(t, service.Options{}, Options{})
	resp, err := c.Advise(context.Background(), adviseReq())
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Verdicts) != 1 {
		t.Fatalf("verdicts = %+v", resp.Verdicts)
	}
	v := resp.Verdicts[0]
	if v.System != "Isambard-AI" || !v.Offload || v.Speedup <= 1 {
		t.Fatalf("verdict = %+v", v)
	}
}

func TestThresholdRoundTrip(t *testing.T) {
	_, c := newService(t, service.Options{}, Options{})
	req := service.ThresholdRequest{System: "isambard-ai", Kernel: "gemm", Precision: "f32"}
	req.Config.MaxDim = 64
	req.Config.Iterations = 8
	first, err := c.Threshold(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached || first.System != "Isambard-AI" || first.Samples != 64 {
		t.Fatalf("first sweep: %+v", first)
	}
	again, err := c.Threshold(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached || again.Key != first.Key {
		t.Fatalf("repeat not served from cache: %+v", again)
	}
}

func TestDispatchBatchRoundTrip(t *testing.T) {
	_, c := newService(t, service.Options{}, Options{})
	req := service.DispatchRequest{System: "isambard-ai"}
	for i := 0; i < 50; i++ {
		cr := service.DispatchCallRequest{}
		cr.Kernel = "gemm"
		cr.M, cr.N, cr.K = 16+4*(i%10), 64, 64
		cr.Precision = "f64"
		cr.Count = 1
		cr.Movement = "once"
		req.Calls = append(req.Calls, cr)
	}
	resp, err := c.DispatchBatch(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Decisions) != 50 {
		t.Fatalf("decisions = %d", len(resp.Decisions))
	}
	// 10 distinct shapes in a 50-call batch: the dispatcher's memoization
	// must answer the 40 repeats from cache.
	if resp.CacheHits < 40 {
		t.Fatalf("cache hits = %d, want >= 40", resp.CacheHits)
	}
	for _, d := range resp.Decisions {
		if d.Device != "cpu" && d.Device != "gpu" {
			t.Fatalf("decision device %q", d.Device)
		}
	}
}

func TestHealthAndMetrics(t *testing.T) {
	_, c := newService(t, service.Options{}, Options{})
	h, err := c.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Fatalf("health = %+v", h)
	}
	if _, err := c.Advise(context.Background(), adviseReq()); err != nil {
		t.Fatal(err)
	}
	m, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(m, "blob_requests_total") {
		t.Fatalf("metrics scrape missing counters:\n%s", m)
	}
}

// TestBadRequestSurfacesAPIError: validation failures come back as a
// typed *APIError carrying the machine-readable code, and are not
// retried (one attempt even with a generous retry budget).
func TestBadRequestSurfacesAPIError(t *testing.T) {
	var hits atomic.Int64
	svc := service.New(service.Options{})
	inner := svc.Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(func() { ts.Close(); svc.Close() })
	c := New(Options{BaseURL: ts.URL, Retry: resilience.RetryPolicy{MaxAttempts: 5}})

	req := adviseReq()
	req.Systems = []string{"cray-1"}
	_, err := c.Advise(context.Background(), req)
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("error = %v, want *APIError", err)
	}
	if ae.Status != http.StatusBadRequest || ae.Code != "bad_request" || ae.Message == "" {
		t.Fatalf("APIError = %+v", ae)
	}
	if ae.Transient() {
		t.Fatal("a 400 must not be transient")
	}
	if n := hits.Load(); n != 1 {
		t.Fatalf("server saw %d attempts for a non-retryable error, want 1", n)
	}
}

// TestRetryHonorsRetryAfter: a 503 with Retry-After raises the backoff
// floor — the second attempt arrives no sooner than the hint — and the
// retry succeeds once the server recovers.
func TestRetryHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	svc := service.New(service.Options{})
	inner := svc.Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"schema":"blob.v1.error","error":{"code":"queue_full","message":"queue full","retry_after_s":1}}`))
			return
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(func() { ts.Close(); svc.Close() })
	c := New(Options{BaseURL: ts.URL, Retry: resilience.RetryPolicy{MaxAttempts: 3}})

	began := time.Now()
	resp, err := c.Advise(context.Background(), adviseReq())
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Verdicts) != 1 {
		t.Fatalf("verdicts = %+v", resp.Verdicts)
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("attempts = %d, want 2", n)
	}
	// The hint was 1 second; the retry must not have fired early even
	// though the policy's own backoff (BaseDelay 0) would be instant.
	if waited := time.Since(began); waited < time.Second {
		t.Fatalf("retried after %v, before the 1s Retry-After hint", waited)
	}
}

// TestRetryAfterHintIsSeconds pins the client-side half of the units
// bugfix: a rejection's hint decodes to whole seconds, with the header
// and the JSON mirror agreeing.
func TestRetryAfterHintIsSeconds(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "7")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"schema":"blob.v1.error","error":{"code":"queue_full","message":"queue full","retry_after_s":7}}`))
	}))
	t.Cleanup(ts.Close)
	c := New(Options{BaseURL: ts.URL})

	_, err := c.Advise(context.Background(), adviseReq())
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("error = %v, want *APIError", err)
	}
	if ae.RetryAfter != 7*time.Second {
		t.Fatalf("RetryAfter = %v, want 7s (a milliseconds reading would be 7ms or 7000s)", ae.RetryAfter)
	}
	if !ae.Transient() {
		t.Fatal("a 503 must be transient")
	}
}

// TestBreakerOpensOnSustainedFailure: enough transport-level failures
// trip the client breaker; the next call fails fast with ErrOpen and
// never reaches the wire.
func TestBreakerOpensOnSustainedFailure(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"schema":"blob.v1.error","error":{"code":"queue_full","message":"queue full","retry_after_s":1}}`))
	}))
	t.Cleanup(ts.Close)
	c := New(Options{
		BaseURL: ts.URL,
		Breaker: resilience.BreakerConfig{MinRequests: 3, FailureRatio: 1},
	})

	for i := 0; i < 3; i++ {
		if _, err := c.Advise(context.Background(), adviseReq()); err == nil {
			t.Fatal("expected failure")
		}
	}
	before := hits.Load()
	_, err := c.Advise(context.Background(), adviseReq())
	if !errors.Is(err, resilience.ErrOpen) {
		t.Fatalf("error = %v, want ErrOpen", err)
	}
	if hits.Load() != before {
		t.Fatal("open breaker still sent a request")
	}
}

// TestBadRequestsDoNotTripBreaker: a stream of 400s (the caller's bug)
// leaves the breaker closed, so healthy callers sharing the client are
// unaffected.
func TestBadRequestsDoNotTripBreaker(t *testing.T) {
	_, c := newService(t, service.Options{}, Options{
		Breaker: resilience.BreakerConfig{MinRequests: 2, FailureRatio: 0.5},
	})
	bad := adviseReq()
	bad.Systems = []string{"cray-1"}
	for i := 0; i < 10; i++ {
		var ae *APIError
		if _, err := c.Advise(context.Background(), bad); !errors.As(err, &ae) {
			t.Fatalf("error = %v, want *APIError", err)
		}
	}
	if _, err := c.Advise(context.Background(), adviseReq()); err != nil {
		t.Fatalf("breaker tripped on client errors: %v", err)
	}
}

// TestContextCancellation: a cancelled context aborts the call (and any
// pending retry sleep) promptly.
func TestContextCancellation(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"schema":"blob.v1.error","error":{"code":"queue_full","message":"queue full","retry_after_s":30}}`))
	}))
	t.Cleanup(ts.Close)
	c := New(Options{BaseURL: ts.URL, Retry: resilience.RetryPolicy{MaxAttempts: 3}})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Advise(ctx, adviseReq())
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the first attempt fail and the retry sleep start
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("error = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancellation did not interrupt the Retry-After sleep")
	}
}

// TestSchemaMismatchRejected: a 200 whose envelope names the wrong
// schema is an error, not silently mis-decoded data.
func TestSchemaMismatchRejected(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"schema":"blob.v1.threshold","data":{}}`))
	}))
	t.Cleanup(ts.Close)
	c := New(Options{BaseURL: ts.URL})
	_, err := c.Advise(context.Background(), adviseReq())
	if err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("error = %v, want schema mismatch", err)
	}
}

// healthEnvelope is a minimal valid health body for the integrity tests.
const healthEnvelope = `{"schema":"blob.v1.health","data":{"status":"ok","uptime_seconds":1}}`

// TestTruncatedBodyRetried: a body cut mid-stream (Content-Length says
// more than arrived — the wire form of a dying proxy) must classify as a
// transient DecodeError and be healed by the retry policy, not returned
// terminally.
func TestTruncatedBodyRetried(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if calls.Add(1) == 1 {
			// Promise the full envelope, deliver half: the client's read
			// ends in io.ErrUnexpectedEOF.
			w.Header().Set("Content-Length", fmt.Sprint(len(healthEnvelope)))
			w.Write([]byte(healthEnvelope[:20]))
			return
		}
		w.Write([]byte(healthEnvelope))
	}))
	t.Cleanup(ts.Close)

	// One attempt: the truncation surfaces as a transient DecodeError.
	c := New(Options{BaseURL: ts.URL})
	_, err := c.Health(context.Background())
	var de *DecodeError
	if !errors.As(err, &de) {
		t.Fatalf("error = %v (%T), want *DecodeError", err, err)
	}
	if !resilience.IsTransient(err) {
		t.Fatalf("truncated body not transient: %v", err)
	}

	// With a retry budget the second, intact response heals the call.
	// (Health bypasses the retry loop, so prove it on the POST path.)
	calls.Store(0)
	svcTS := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		body := `{"schema":"blob.v1.threshold","data":{"system":"dawn","kernel":"gemv","problem":"square","definition":"d","precision":"f64","key":"k","samples":1,"thresholds":{},"cached":true}}`
		if calls.Add(1) == 1 {
			w.Header().Set("Content-Length", fmt.Sprint(len(body)))
			w.Write([]byte(body[:25]))
			return
		}
		w.Write([]byte(body))
	}))
	t.Cleanup(svcTS.Close)
	rc := New(Options{BaseURL: svcTS.URL, Retry: resilience.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond}})
	resp, err := rc.Threshold(context.Background(), service.ThresholdRequest{System: "dawn", Kernel: "gemv", Precision: "f64"})
	if err != nil {
		t.Fatalf("retry did not heal the truncated body: %v", err)
	}
	if !resp.Cached {
		t.Fatalf("unexpected healed response: %+v", resp)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d calls, want 2 (initial + one retry)", got)
	}
}

// TestCorruptBodyRetriedAndBreakerCounted: a bit-flipped payload is a
// transient DecodeError (retried), and a peer that keeps sending garbage
// still opens the client breaker — integrity failures are retryable AND
// breaker-countable, unlike 4xx verdicts.
func TestCorruptBodyRetriedAndBreakerCounted(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		corrupted := []byte(healthEnvelope)
		corrupted[0] ^= 0x01 // '{' -> 'z': structurally broken JSON
		w.Write(corrupted)
	}))
	t.Cleanup(ts.Close)

	c := New(Options{BaseURL: ts.URL, Breaker: resilience.BreakerConfig{
		MinRequests: 1, FailureRatio: 0.5, OpenTimeout: time.Hour,
	}})
	req := service.ThresholdRequest{System: "dawn", Kernel: "gemv", Precision: "f64"}
	_, err := c.Threshold(context.Background(), req)
	var de *DecodeError
	if !errors.As(err, &de) || !de.Transient() {
		t.Fatalf("error = %v, want transient *DecodeError", err)
	}
	// The decode failure counted: the breaker now refuses outright.
	if _, err := c.Threshold(context.Background(), req); !errors.Is(err, resilience.ErrOpen) {
		t.Fatalf("breaker did not open on corrupt bodies: %v", err)
	}
}
