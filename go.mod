module repro

// Deliberately dependency-free: the benchmark must build offline with a
// stock Go toolchain. This is also why the blob-vet lint suite
// (internal/analysis) is built on go/ast + go/types + go/importer from
// the standard library instead of golang.org/x/tools/go/analysis — see
// DESIGN.md §8.
go 1.22
